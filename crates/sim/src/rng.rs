//! A small, self-contained deterministic pseudo-random number generator.
//!
//! The repository builds in fully-offline environments, so it cannot pull
//! the `rand` crate; every consumer of randomness (input generation,
//! error-injection campaigns, randomized property tests) uses this
//! SplitMix64 generator instead. SplitMix64 passes BigCrush, needs eight
//! bytes of state, and is trivially reproducible from a single `u64`
//! seed — exactly what deterministic simulation inputs need.
//!
//! Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
//! Generators" (OOPSLA 2014); the same update function as Java's
//! `SplittableRandom` and the seeder of xoshiro.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use lp_sim::rng::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Create the `stream`-th independent generator derived from `seed`.
    ///
    /// Every `(seed, stream)` pair yields a fixed, decorrelated sequence:
    /// sampling decisions made per crash point (or per worker) stay
    /// reproducible from the single user-facing `--seed` while not
    /// sharing a sequence across streams. The derivation finalizes both
    /// inputs through the SplitMix64 mixer before combining, so nearby
    /// seeds/streams do not produce nearby states.
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        Rng64 {
            state: mix(seed) ^ mix(stream.wrapping_mul(0xa076_1d64_78bd_642f)),
        }
    }

    /// Next raw 64-bit value, uniform over all of `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (unbiased enough for test workloads).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) has no valid output");
        // Lemire-style multiply-shift reduction; bias is < 2^-53 for the
        // small ranges used in tests.
        (((self.next_u64() >> 11) as u128 * n as u128) >> 53) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// The generator's current internal state, as an opaque fingerprint.
    ///
    /// Two generators with equal fingerprints produce identical streams
    /// from here on, so the fingerprint can key memoization of any
    /// computation whose remaining randomness comes from this generator
    /// (the crash-state deduplication table uses it to keep states with
    /// different pending fault draws apart). Not an inverse of
    /// [`Rng64::new_stream`]; only equality is meaningful.
    pub fn fingerprint(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Rng64::new_stream(42, 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new_stream(42, 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng64::new_stream(42, 4).next_u64();
        let d = Rng64::new_stream(43, 3).next_u64();
        assert_ne!(a[0], c, "stream changes the sequence");
        assert_ne!(a[0], d, "seed changes the sequence");
    }

    #[test]
    fn known_splitmix_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // reference SplitMix64 implementation.
        let mut r = Rng64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_range_and_respects_bound() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = r.below(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Rng64::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let v = r.range_inclusive(2, 4);
            assert!((2..=4).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fingerprint_identifies_the_remaining_stream() {
        let mut a = Rng64::new_stream(42, 3);
        let mut b = Rng64::new_stream(42, 3);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.next_u64();
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "advancing changes the fingerprint"
        );
        b.next_u64();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.next_u64(),
            b.next_u64(),
            "equal fingerprints resume equal"
        );
    }
}

//! A minimal deterministic fork-join pool for the exploration engines.
//!
//! The crash-state model checker and the bench harness both fan an
//! embarrassingly parallel matrix of independent simulation cases across
//! host threads. This module provides the two primitives they need —
//! ordered parallel maps — built purely on [`std::thread::scope`], so
//! the workspace stays dependency-free (the container image carries no
//! crates.io registry).
//!
//! # Determinism contract
//!
//! [`par_map`] and [`par_map_collect`] return results in input order
//! regardless of which worker processed which item or in what real-time
//! order items completed. As long as `f(i, item)` is itself a pure
//! function of its inputs (the simulator is deterministic and every
//! stochastic choice draws from a [`crate::rng::Rng64::new_stream`] keyed
//! by the item, never from shared state), the output is byte-identical at
//! any thread count, including the sequential `threads <= 1` fallback.
//!
//! # Scheduling
//!
//! Work is distributed dynamically: workers claim the next unclaimed
//! *batch* of indices from a shared atomic counter (a strided
//! `fetch_add`, so claiming cost amortizes over [`claim_stride`] items
//! while a few slow items still cannot idle the remaining workers the way
//! static chunking would). Results never contend: [`par_map`] writes each
//! into its own write-once [`OnceLock`] slot, and [`par_map_collect`]
//! accumulates into a worker-local vector merged exactly once at the end,
//! in input order. No locks are held while computing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads to use by default: the host's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Indices claimed per `fetch_add` on the shared work counter: enough
/// that claiming is a vanishing fraction of the work, small enough that
/// dynamic load balancing still absorbs slow items (each worker should
/// get several claims even on a perfectly uniform workload).
fn claim_stride(items: usize, workers: usize) -> usize {
    (items / (workers * 8)).clamp(1, 64)
}

/// Map `f` over `items` using up to `threads` host threads, returning the
/// results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or one item) the
/// map runs sequentially on the calling thread — the result is identical
/// either way, only wall-clock differs.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated to the caller once
/// all workers have stopped, matching the sequential behaviour closely
/// enough for `should_panic`-style callers.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(items.len());
    let stride = claim_stride(items.len(), workers);
    let next = AtomicUsize::new(0);
    // Write-once result slots: setting a OnceLock is one atomic store on
    // the uncontended path (and each slot has exactly one writer), unlike
    // the per-item Mutex<Option<R>> this replaces.
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let base = next.fetch_add(stride, Ordering::Relaxed);
                    if base >= items.len() {
                        break;
                    }
                    for i in base..(base + stride).min(items.len()) {
                        let claimed = slots[i].set(f(i, &items[i]));
                        assert!(claimed.is_ok(), "slot {i} written twice");
                    }
                })
            })
            .collect();
        // Re-raise the first worker panic with its original payload (a
        // bare scope exit would replace it with "a scoped thread
        // panicked").
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker completed every claimed slot")
        })
        .collect()
}

/// [`par_map`] with worker-local result accumulation: each worker pushes
/// `(index, result)` pairs into its own vector and merges it into the
/// shared output exactly once, when it runs out of work. Results are
/// sorted back into input order before returning, so the output is
/// identical to [`par_map`]'s.
///
/// Prefer this over [`par_map`] when results are produced faster than a
/// per-item slot write amortizes (many small results), or when the caller
/// wants the pool's contention limited to one lock acquisition per
/// *worker* rather than any per-item synchronization at all.
///
/// # Panics
///
/// Worker panics propagate to the caller with their original payload,
/// exactly as in [`par_map`].
pub fn par_map_collect<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(items.len());
    let stride = claim_stride(items.len(), workers);
    let next = AtomicUsize::new(0);
    let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let base = next.fetch_add(stride, Ordering::Relaxed);
                        if base >= items.len() {
                            break;
                        }
                        let end = (base + stride).min(items.len());
                        for (i, item) in items[base..end].iter().enumerate() {
                            local.push((base + i, f(base + i, item)));
                        }
                    }
                    merged.lock().unwrap().append(&mut local);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let mut all = merged.into_inner().unwrap();
    assert_eq!(all.len(), items.len(), "every item produced one result");
    all.sort_unstable_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |i, &x| {
            // Make later items finish first to exercise the ordered merge.
            std::thread::sleep(std::time::Duration::from_micros(100 - x));
            (i as u64) * 10 + x
        });
        let expect: Vec<u64> = (0..100).map(|x| x * 11).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u32> = (0..257).collect();
        let f = |i: usize, x: &u32| (i as u32).wrapping_mul(31).wrapping_add(*x);
        assert_eq!(par_map(1, &items, f), par_map(7, &items, f));
    }

    #[test]
    fn collect_matches_slot_map_and_sequential() {
        let items: Vec<u32> = (0..1023).collect();
        let f = |i: usize, x: &u32| (i as u32).wrapping_mul(31).wrapping_add(*x);
        let seq = par_map_collect(1, &items, f);
        let par = par_map_collect(5, &items, f);
        assert_eq!(seq, par);
        assert_eq!(par, par_map(5, &items, f));
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = vec![];
        assert!(par_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[42u8], |_, &x| x), vec![42]);
        assert!(par_map_collect(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map_collect(4, &[42u8], |_, &x| x), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
        assert_eq!(par_map_collect(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn stride_amortizes_without_starving_workers() {
        assert_eq!(claim_stride(1, 8), 1);
        assert_eq!(claim_stride(100, 8), 1);
        assert_eq!(claim_stride(10_000, 8), 64, "stride is capped");
        // Every worker still gets multiple claims at the cap.
        assert!(10_000 / claim_stride(10_000, 8) >= 8 * 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(4, &items, |_, &x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "collect boom")]
    fn collect_worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map_collect(4, &items, |_, &x| {
            if x == 7 {
                panic!("collect boom");
            }
            x
        });
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

//! A minimal deterministic fork-join pool for the exploration engines.
//!
//! The crash-state model checker and the bench harness both fan an
//! embarrassingly parallel matrix of independent simulation cases across
//! host threads. This module provides the one primitive they need —
//! an *ordered* parallel map — built purely on [`std::thread::scope`], so
//! the workspace stays dependency-free (the container image carries no
//! crates.io registry).
//!
//! # Determinism contract
//!
//! [`par_map`] returns results in input order regardless of which worker
//! processed which item or in what real-time order items completed. As
//! long as `f(i, item)` is itself a pure function of its inputs (the
//! simulator is deterministic and every stochastic choice draws from a
//! [`crate::rng::Rng64::new_stream`] keyed by the item, never from shared
//! state), the output of `par_map` is byte-identical at any thread count,
//! including the sequential `threads <= 1` fallback.
//!
//! # Scheduling
//!
//! Work is distributed dynamically: workers claim the next unclaimed index
//! from a shared atomic counter, so a few slow items (e.g. exhaustive
//! crash-point replays of the FFT kernel) do not idle the remaining
//! workers the way static chunking would. Each result lands in its own
//! pre-allocated slot; no locks are held while computing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the host's available
/// parallelism, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Map `f` over `items` using up to `threads` host threads, returning the
/// results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or one item) the
/// map runs sequentially on the calling thread — the result is identical
/// either way, only wall-clock differs.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated to the caller once
/// all workers have stopped, matching the sequential behaviour closely
/// enough for `should_panic`-style callers.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().unwrap() = Some(r);
                })
            })
            .collect();
        // Re-raise the first worker panic with its original payload (a
        // bare scope exit would replace it with "a scoped thread
        // panicked").
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |i, &x| {
            // Make later items finish first to exercise the ordered merge.
            std::thread::sleep(std::time::Duration::from_micros(100 - x));
            (i as u64) * 10 + x
        });
        let expect: Vec<u64> = (0..100).map(|x| x * 11).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u32> = (0..257).collect();
        let f = |i: usize, x: &u32| (i as u32).wrapping_mul(31).wrapping_add(*x);
        assert_eq!(par_map(1, &items, f), par_map(7, &items, f));
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = vec![];
        assert!(par_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[42u8], |_, &x| x), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u8, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map(4, &items, |_, &x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

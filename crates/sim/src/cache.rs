//! Set-associative cache arrays: per-core L1s and the shared inclusive L2
//! with a MESI-style directory.
//!
//! These types are *storage + replacement* only; the coherence and timing
//! logic that ties them together lives in [`crate::memsys`]. The hierarchy
//! is writeback/write-allocate with LRU replacement, 64-byte lines, and an
//! inclusive L2 that tracks which cores hold each line (sharer bitmask) and
//! whether one core holds it exclusively (owner).

use crate::addr::{LineAddr, LINE_BYTES};

/// MESI coherence state of an L1 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Dirty, exclusive to one core.
    Modified,
    /// Clean, exclusive to one core.
    Exclusive,
    /// Clean, possibly held by several cores.
    Shared,
    /// Not present.
    Invalid,
}

/// One L1 line: identity, state, payload, replacement and dirty metadata.
#[derive(Debug, Clone)]
pub struct L1Line {
    /// Line address (valid only when `state != Invalid`).
    pub line: LineAddr,
    /// MESI state.
    pub state: Mesi,
    /// Line payload.
    pub data: [u8; LINE_BYTES],
    /// LRU timestamp.
    pub lru: u64,
    /// Cycle at which the line first became dirty (valid when `Modified`).
    pub dirty_since: u64,
}

impl Default for L1Line {
    fn default() -> Self {
        L1Line {
            line: LineAddr(0),
            state: Mesi::Invalid,
            data: [0u8; LINE_BYTES],
            lru: 0,
            dirty_since: 0,
        }
    }
}

/// A line evicted or invalidated from an L1, with its payload so dirty data
/// can be propagated down the hierarchy.
#[derive(Debug, Clone)]
pub struct EvictedL1 {
    /// Which line was removed.
    pub line: LineAddr,
    /// State it held at removal.
    pub state: Mesi,
    /// Payload at removal.
    pub data: [u8; LINE_BYTES],
    /// When it became dirty (meaningful only if `state == Modified`).
    pub dirty_since: u64,
}

/// A private, set-associative, writeback L1 data cache.
#[derive(Debug, Clone)]
pub struct L1Cache {
    set_bits: u32,
    assoc: usize,
    lines: Vec<L1Line>,
    tick: u64,
}

impl L1Cache {
    /// Build an L1 of `bytes` capacity and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn new(bytes: usize, assoc: usize) -> Self {
        let sets = bytes / (assoc * LINE_BYTES);
        assert!(sets.is_power_of_two() && sets > 0, "bad L1 geometry");
        L1Cache {
            set_bits: sets.trailing_zeros(),
            assoc,
            lines: vec![L1Line::default(); sets * assoc],
            tick: 0,
        }
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = line.set_index(self.set_bits);
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Index of the way holding `line`, if present.
    pub fn find(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.lines[i].state != Mesi::Invalid && self.lines[i].line == line)
    }

    /// Immutable access to a way by index.
    pub fn way(&self, idx: usize) -> &L1Line {
        &self.lines[idx]
    }

    /// Mutable access to a way by index.
    pub fn way_mut(&mut self, idx: usize) -> &mut L1Line {
        &mut self.lines[idx]
    }

    /// Refresh the LRU timestamp of a way.
    pub fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.lines[idx].lru = self.tick;
    }

    /// Install `line` (evicting the LRU way if the set is full) and return
    /// the victim, if one was displaced. The caller must propagate dirty
    /// victims into the L2.
    pub fn insert(
        &mut self,
        line: LineAddr,
        data: [u8; LINE_BYTES],
        state: Mesi,
        dirty_since: u64,
    ) -> (usize, Option<EvictedL1>) {
        debug_assert!(self.find(line).is_none(), "inserting a resident line");
        let range = self.set_range(line);
        // Prefer an invalid way; otherwise evict the LRU way.
        let idx = range
            .clone()
            .find(|&i| self.lines[i].state == Mesi::Invalid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("associativity >= 1")
            });
        let victim = if self.lines[idx].state != Mesi::Invalid {
            let l = &self.lines[idx];
            Some(EvictedL1 {
                line: l.line,
                state: l.state,
                data: l.data,
                dirty_since: l.dirty_since,
            })
        } else {
            None
        };
        self.tick += 1;
        self.lines[idx] = L1Line {
            line,
            state,
            data,
            lru: self.tick,
            dirty_since,
        };
        (idx, victim)
    }

    /// Remove `line` if present, returning its contents.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedL1> {
        let idx = self.find(line)?;
        let l = &mut self.lines[idx];
        let out = EvictedL1 {
            line: l.line,
            state: l.state,
            data: l.data,
            dirty_since: l.dirty_since,
        };
        l.state = Mesi::Invalid;
        Some(out)
    }

    /// Drop every line without writing anything back (crash semantics).
    pub fn wipe(&mut self) {
        for l in &mut self.lines {
            l.state = Mesi::Invalid;
        }
    }

    /// Iterate over valid ways (for cleaners/drains).
    pub fn valid_ways(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.lines.len()).filter(|&i| self.lines[i].state != Mesi::Invalid)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.valid_ways().count()
    }
}

/// One L2 line with directory state.
#[derive(Debug, Clone)]
pub struct L2Line {
    /// Line address (valid only when `valid`).
    pub line: LineAddr,
    /// Whether the entry holds a line.
    pub valid: bool,
    /// Whether the L2 copy (or an upstream L1 copy) is dirty relative to NVMM.
    pub dirty: bool,
    /// Payload. May be stale while a core holds the line `Modified`; the
    /// directory `owner` says where the freshest copy is.
    pub data: [u8; LINE_BYTES],
    /// LRU timestamp.
    pub lru: u64,
    /// Cycle the line (anywhere in the hierarchy) first became dirty.
    pub dirty_since: u64,
    /// Bitmask of cores holding a valid L1 copy.
    pub sharers: u64,
    /// Core holding the line `Exclusive`/`Modified`, if any.
    pub owner: Option<u8>,
}

impl Default for L2Line {
    fn default() -> Self {
        L2Line {
            line: LineAddr(0),
            valid: false,
            dirty: false,
            data: [0u8; LINE_BYTES],
            lru: 0,
            dirty_since: 0,
            sharers: 0,
            owner: None,
        }
    }
}

/// The shared, inclusive, writeback L2 with an in-cache directory.
#[derive(Debug, Clone)]
pub struct L2Cache {
    set_bits: u32,
    assoc: usize,
    lines: Vec<L2Line>,
    tick: u64,
}

impl L2Cache {
    /// Build an L2 of `bytes` capacity and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn new(bytes: usize, assoc: usize) -> Self {
        let sets = bytes / (assoc * LINE_BYTES);
        assert!(sets.is_power_of_two() && sets > 0, "bad L2 geometry");
        L2Cache {
            set_bits: sets.trailing_zeros(),
            assoc,
            lines: vec![L2Line::default(); sets * assoc],
            tick: 0,
        }
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = line.set_index(self.set_bits);
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Index of the way holding `line`, if present.
    pub fn find(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.lines[i].valid && self.lines[i].line == line)
    }

    /// Immutable access to a way by index.
    pub fn way(&self, idx: usize) -> &L2Line {
        &self.lines[idx]
    }

    /// Mutable access to a way by index.
    pub fn way_mut(&mut self, idx: usize) -> &mut L2Line {
        &mut self.lines[idx]
    }

    /// Refresh the LRU timestamp of a way.
    pub fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.lines[idx].lru = self.tick;
    }

    /// Pick the way `line` would be installed into: an invalid way if one
    /// exists, else the LRU way (whose current occupant must be evicted by
    /// the caller first).
    pub fn victim_way(&self, line: LineAddr) -> usize {
        let range = self.set_range(line);
        range
            .clone()
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.lines[i].lru)
                    .expect("associativity >= 1")
            })
    }

    /// Install `line` into way `idx` (caller has already evicted the
    /// previous occupant).
    pub fn install(
        &mut self,
        idx: usize,
        line: LineAddr,
        data: [u8; LINE_BYTES],
        sharer: usize,
        owner: bool,
    ) {
        self.tick += 1;
        self.lines[idx] = L2Line {
            line,
            valid: true,
            dirty: false,
            data,
            lru: self.tick,
            dirty_since: 0,
            sharers: 1u64 << sharer,
            owner: if owner { Some(sharer as u8) } else { None },
        };
    }

    /// Drop every line without writing anything back (crash semantics).
    pub fn wipe(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
            l.sharers = 0;
            l.owner = None;
        }
    }

    /// Iterate over valid ways (for cleaners/drains/eviction walks).
    pub fn valid_ways(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.lines.len()).filter(|&i| self.lines[i].valid)
    }

    /// Total way count (valid or not), for index-based walks that must
    /// mutate the cache mid-iteration without collecting indices first.
    pub fn num_ways(&self) -> usize {
        self.lines.len()
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.valid_ways().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(v: u8) -> [u8; LINE_BYTES] {
        [v; LINE_BYTES]
    }

    #[test]
    fn l1_insert_find_touch() {
        let mut c = L1Cache::new(2 * 1024, 2); // 16 sets, 2 ways
        assert_eq!(c.find(LineAddr(5)), None);
        let (idx, victim) = c.insert(LineAddr(5), data(1), Mesi::Exclusive, 0);
        assert!(victim.is_none());
        assert_eq!(c.find(LineAddr(5)), Some(idx));
        assert_eq!(c.way(idx).data[0], 1);
    }

    #[test]
    fn l1_lru_eviction_within_set() {
        let mut c = L1Cache::new(2 * 1024, 2); // 16 sets
                                               // Lines 0, 16, 32 map to set 0.
        c.insert(LineAddr(0), data(1), Mesi::Shared, 0);
        c.insert(LineAddr(16), data(2), Mesi::Shared, 0);
        // Touch line 0 so 16 is the LRU victim.
        let i0 = c.find(LineAddr(0)).unwrap();
        c.touch(i0);
        let (_, victim) = c.insert(LineAddr(32), data(3), Mesi::Shared, 0);
        let victim = victim.expect("set was full");
        assert_eq!(victim.line, LineAddr(16));
        assert!(c.find(LineAddr(0)).is_some());
        assert!(c.find(LineAddr(16)).is_none());
        assert!(c.find(LineAddr(32)).is_some());
    }

    #[test]
    fn l1_invalidate_returns_payload() {
        let mut c = L1Cache::new(2 * 1024, 2);
        c.insert(LineAddr(7), data(9), Mesi::Modified, 42);
        let ev = c.invalidate(LineAddr(7)).unwrap();
        assert_eq!(ev.state, Mesi::Modified);
        assert_eq!(ev.dirty_since, 42);
        assert_eq!(ev.data[0], 9);
        assert!(c.find(LineAddr(7)).is_none());
        assert!(c.invalidate(LineAddr(7)).is_none());
    }

    #[test]
    fn l1_wipe_drops_everything() {
        let mut c = L1Cache::new(2 * 1024, 2);
        c.insert(LineAddr(1), data(1), Mesi::Modified, 0);
        c.insert(LineAddr(2), data(2), Mesi::Shared, 0);
        assert_eq!(c.resident(), 2);
        c.wipe();
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn l2_install_and_directory() {
        let mut c = L2Cache::new(8 * 1024, 4);
        let way = c.victim_way(LineAddr(3));
        assert!(!c.way(way).valid);
        c.install(way, LineAddr(3), data(7), 2, true);
        let idx = c.find(LineAddr(3)).unwrap();
        assert_eq!(c.way(idx).sharers, 0b100);
        assert_eq!(c.way(idx).owner, Some(2));
        assert!(!c.way(idx).dirty);
    }

    #[test]
    fn l2_victim_prefers_invalid_then_lru() {
        let mut c = L2Cache::new(512, 2); // 4 sets; lines 0,4,8 map to set 0
        let w0 = c.victim_way(LineAddr(0));
        c.install(w0, LineAddr(0), data(0), 0, false);
        let w1 = c.victim_way(LineAddr(4));
        assert_ne!(w0, w1);
        c.install(w1, LineAddr(4), data(0), 0, false);
        // Touch line 0; victim for line 8 should be way of line 4.
        let i0 = c.find(LineAddr(0)).unwrap();
        c.touch(i0);
        let v = c.victim_way(LineAddr(8));
        assert_eq!(c.way(v).line, LineAddr(4));
    }

    #[test]
    fn l2_wipe_clears_directory() {
        let mut c = L2Cache::new(512, 2);
        let w = c.victim_way(LineAddr(0));
        c.install(w, LineAddr(0), data(1), 1, true);
        c.wipe();
        assert_eq!(c.resident(), 0);
        assert!(c.find(LineAddr(0)).is_none());
    }
}

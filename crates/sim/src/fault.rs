//! Deterministic fault-injection model: torn line persists, media errors
//! (bit flips and poisoned lines), and nested crash-during-recovery.
//!
//! The crash census ([`crate::memsys::CrashCensus`]) models clean ADR power
//! loss: whole lines either persist or don't, the medium never lies, and
//! recovery itself never fails. This module supplies the three fault
//! classes beyond that model:
//!
//! * **Torn writes** — ADR guarantees 8-byte atomic durability, not
//!   64-byte; a crash mid-writeback may land any word subset of a line
//!   ([`crate::mem::Nvmm::write_words`],
//!   [`crate::memsys::CrashCensus::materialize_subset_torn`]).
//! * **Media faults** — seeded single-bit flips ([`flip_bit`]) and
//!   poisoned lines that read as a fixed pattern until a writeback scrubs
//!   them ([`crate::mem::Nvmm::poison_line`]).
//! * **Nested crashes** — power lost again *during* recovery, bounded by
//!   [`FaultConfig::nested_bound`]; the campaign re-arms a crash trigger
//!   per recovery attempt and relies on recovery idempotence to converge.
//!
//! Everything is driven by [`crate::rng::Rng64`] streams so fault
//! placement is a pure function of `(seed, work unit)` — campaigns are
//! byte-identical at any host thread count.

use crate::addr::{LineAddr, LINE_BYTES};
use crate::mem::Nvmm;
use crate::rng::Rng64;

/// Which fault classes a campaign injects, parsed from a
/// `--faults torn,media,nested` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Persist census entries at 8-byte word granularity.
    pub torn: bool,
    /// Inject bit flips and poisoned lines into the post-crash image.
    pub media: bool,
    /// Widen each poison draw to *two adjacent* lines (a media burst).
    /// Implies `media`; single-line poisons become the burst's degenerate
    /// case only when no repairable neighbour exists.
    pub burst: bool,
    /// Inject crashes during recovery (bounded retries).
    pub nested: bool,
    /// Maximum injected crashes per recovery (the paper-facing bound `k`);
    /// after the bound, one final attempt runs crash-free. Ignored unless
    /// `nested` is set.
    pub nested_bound: u32,
}

impl FaultConfig {
    /// The default nested-crash bound `k`.
    pub const DEFAULT_NESTED_BOUND: u32 = 2;

    /// No faults: the clean ADR crash model.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Parse a comma-separated class list (`torn`, `media`, `media-burst`,
    /// `nested`; e.g. `"torn,nested"`). `media-burst` enables `media` and
    /// widens each poison draw to two adjacent lines.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown class.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig {
            nested_bound: Self::DEFAULT_NESTED_BOUND,
            ..FaultConfig::default()
        };
        for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match item {
                "torn" => cfg.torn = true,
                "media" => cfg.media = true,
                "media-burst" => {
                    cfg.media = true;
                    cfg.burst = true;
                }
                "nested" => cfg.nested = true,
                other => {
                    return Err(format!(
                        "unknown fault class '{other}' (expected torn, media, media-burst, nested)"
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Whether any fault class is enabled.
    pub fn any(&self) -> bool {
        self.torn || self.media || self.nested
    }
}

impl std::fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.torn {
            parts.push("torn".to_string());
        }
        if self.media {
            parts.push(if self.burst { "media-burst" } else { "media" }.to_string());
        }
        if self.nested {
            parts.push(format!("nested(k={})", self.nested_bound));
        }
        if parts.is_empty() {
            parts.push("none".into());
        }
        f.write_str(&parts.join(","))
    }
}

/// Draw one torn-persist word mask per census entry. Masks are uniform
/// over all 256 word subsets, so the atomic cases (`0x00`, `0xFF`) stay in
/// the explored population alongside genuinely torn ones.
pub fn draw_word_masks(rng: &mut Rng64, entries: usize) -> Vec<u8> {
    let mut out = Vec::new();
    draw_word_masks_into(rng, entries, &mut out);
    out
}

/// [`draw_word_masks`] into a caller-owned buffer (cleared first), so
/// per-state exploration loops can reuse one allocation across replays.
pub fn draw_word_masks_into(rng: &mut Rng64, entries: usize, out: &mut Vec<u8>) {
    out.clear();
    out.extend((0..entries).map(|_| (rng.next_u64() & 0xFF) as u8));
}

/// Flip bit `bit` (0..512) of `line` in `img` — a silent single-bit media
/// error. Unlike poison, nothing records the flip; only a checksum audit
/// can notice it.
///
/// # Panics
///
/// Panics if `bit >= 512` or the line is outside the image.
pub fn flip_bit(img: &mut Nvmm, line: LineAddr, bit: usize) {
    assert!(bit < LINE_BYTES * 8, "bit index {bit} out of line range");
    let mut buf = [0u8; LINE_BYTES];
    img.read_line(line, &mut buf);
    buf[bit / 8] ^= 1u8 << (bit % 8);
    img.write_line(line, &buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_classes_in_any_order() {
        let cfg = FaultConfig::parse("nested, torn").unwrap();
        assert!(cfg.torn && cfg.nested && !cfg.media);
        assert_eq!(cfg.nested_bound, FaultConfig::DEFAULT_NESTED_BOUND);
        let all = FaultConfig::parse("torn,media,nested").unwrap();
        assert!(all.torn && all.media && all.nested && all.any());
        assert!(!FaultConfig::parse("").unwrap().any());
        assert!(FaultConfig::parse("bogus").is_err());
    }

    #[test]
    fn media_burst_implies_media() {
        let cfg = FaultConfig::parse("media-burst").unwrap();
        assert!(cfg.media && cfg.burst && cfg.any());
        assert!(!FaultConfig::parse("media").unwrap().burst);
        assert_eq!(cfg.to_string(), "media-burst");
    }

    #[test]
    fn display_lists_enabled_classes() {
        let mut cfg = FaultConfig::parse("torn,nested").unwrap();
        cfg.nested_bound = 3;
        assert_eq!(cfg.to_string(), "torn,nested(k=3)");
        assert_eq!(FaultConfig::none().to_string(), "none");
    }

    #[test]
    fn word_masks_are_stream_deterministic() {
        let a = draw_word_masks(&mut Rng64::new_stream(7, 9), 32);
        let b = draw_word_masks(&mut Rng64::new_stream(7, 9), 32);
        assert_eq!(a, b);
        let c = draw_word_masks(&mut Rng64::new_stream(7, 10), 32);
        assert_ne!(a, c, "different streams draw different masks");
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let mut img = Nvmm::new(4096);
        img.write_line(LineAddr(3), &[0u8; LINE_BYTES]);
        flip_bit(&mut img, LineAddr(3), 77);
        let mut buf = [0u8; LINE_BYTES];
        img.read_line(LineAddr(3), &mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(buf[77 / 8], 1u8 << (77 % 8));
        flip_bit(&mut img, LineAddr(3), 77);
        img.read_line(LineAddr(3), &mut buf);
        assert_eq!(buf, [0u8; LINE_BYTES], "flipping twice restores");
    }
}

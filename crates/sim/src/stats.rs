//! Simulation statistics: cycles, cache behaviour, NVMM write breakdown,
//! structural hazards, and volatility duration.
//!
//! The paper reports (a) normalized execution time, (b) normalized number of
//! NVMM writes (write amplification), (c) structural-hazard event counts
//! (Table VI), (d) L2 miss rate, and (e) the maximum *volatility duration* —
//! the time a block stays dirty in the hierarchy before reaching NVMM.

/// A power-of-two-bucketed histogram (bucket `i` counts samples in
/// `[2^i, 2^(i+1))`; bucket 0 also holds zeros).
///
/// Used for volatility durations: the paper reasons about how long blocks
/// stay dirty before reaching NVMM, and the distribution (not just the
/// max) is what a periodic cleaner reshapes.
///
/// # Examples
///
/// ```
/// use lp_sim::stats::Log2Histogram;
/// let mut h = Log2Histogram::default();
/// h.record(1);
/// h.record(1000);
/// h.record(1000);
/// assert_eq!(h.samples(), 3);
/// assert_eq!(h.percentile(50.0), Some(1 << 9)); // ~1000 bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; 64] }
    }
}

impl Log2Histogram {
    /// Add one sample.
    pub fn record(&mut self, value: u64) {
        let b = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Lower bound of the bucket containing the p-th percentile
    /// (`None` if empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let total = self.samples();
        if total == 0 {
            return None;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << 63)
    }

    /// Occupied `(bucket_lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-core event counters and cycle accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Core-local cycle counter at the end of execution.
    pub cycles: u64,
    /// Dynamic instruction count (memory ops + modelled compute ops).
    pub instructions: u64,
    /// Load operations issued.
    pub loads: u64,
    /// Store operations issued.
    pub stores: u64,
    /// `clflushopt` operations issued.
    pub flushes: u64,
    /// `clwb` operations issued.
    pub writebacks_issued: u64,
    /// `sfence` operations issued.
    pub fences: u64,
    /// Cycles spent stalled at fences waiting for drains.
    pub fence_stall_cycles: u64,
    /// Events where an L1 miss found all MSHRs busy (Table VI "MSHR").
    pub mshr_full_events: u64,
    /// Events where a compute op issued into a saturated back-end
    /// (Table VI "FUI" proxy: in-flight backlog exceeded the ROB threshold).
    pub fui_events: u64,
    /// Events where a load found the load queue full (Table VI "FUR").
    pub fur_events: u64,
    /// Events where a store/flush found the store queue full (Table VI "FUW").
    pub fuw_events: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
}

impl CoreStats {
    /// Total L1 accesses.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// Merge another core's counters into this one (for aggregation).
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.flushes += other.flushes;
        self.writebacks_issued += other.writebacks_issued;
        self.fences += other.fences;
        self.fence_stall_cycles += other.fence_stall_cycles;
        self.mshr_full_events += other.mshr_full_events;
        self.fui_events += other.fui_events;
        self.fur_events += other.fur_events;
        self.fuw_events += other.fuw_events;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
    }
}

/// Why a line was written to NVMM. The paper's "number of writes" metric
/// counts all of these; the breakdown lets experiments distinguish natural
/// evictions from flush-induced and cleaner-induced writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteCause {
    /// Natural L2 capacity/conflict eviction of a dirty line.
    Eviction,
    /// Explicit `clflushopt`/`clflush`.
    Flush,
    /// Explicit `clwb` (write back, retain line).
    Clwb,
    /// Periodic hardware cleaner.
    Cleaner,
    /// Bulk drain requested by the harness (e.g. end-of-run flush).
    Drain,
}

/// Shared memory-system counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (lead to NVMM reads).
    pub l2_misses: u64,
    /// NVMM line reads (fills).
    pub nvmm_reads: u64,
    /// NVMM line writes from natural dirty evictions.
    pub nvmm_writes_eviction: u64,
    /// NVMM line writes from explicit flushes (`clflushopt`).
    pub nvmm_writes_flush: u64,
    /// NVMM line writes from `clwb`.
    pub nvmm_writes_clwb: u64,
    /// NVMM line writes performed by the periodic cleaner.
    pub nvmm_writes_cleaner: u64,
    /// NVMM line writes from harness-requested drains.
    pub nvmm_writes_drain: u64,
    /// Coherence recalls (dirty data pulled from a peer L1).
    pub coherence_recalls: u64,
    /// Coherence invalidations sent to peer L1s.
    pub coherence_invalidations: u64,
    /// Maximum volatility duration observed (cycles a block stayed dirty
    /// in the hierarchy before its data reached NVMM).
    pub max_volatility: u64,
    /// Sum of volatility durations (for averages).
    pub total_volatility: u64,
    /// Number of volatility samples (dirty lines written back).
    pub volatility_samples: u64,
    /// Distribution of volatility durations.
    pub volatility_hist: Log2Histogram,
}

impl MemStats {
    /// Total NVMM line writes, the paper's "number of writes" metric.
    pub fn nvmm_writes(&self) -> u64 {
        self.nvmm_writes_eviction
            + self.nvmm_writes_flush
            + self.nvmm_writes_clwb
            + self.nvmm_writes_cleaner
            + self.nvmm_writes_drain
    }

    /// L2 accesses.
    pub fn l2_accesses(&self) -> u64 {
        self.l2_hits + self.l2_misses
    }

    /// L2 miss rate in [0, 1]; 0 if no accesses.
    pub fn l2_miss_rate(&self) -> f64 {
        let acc = self.l2_accesses();
        if acc == 0 {
            0.0
        } else {
            self.l2_misses as f64 / acc as f64
        }
    }

    /// Mean volatility duration in cycles; 0 if no samples.
    pub fn mean_volatility(&self) -> f64 {
        if self.volatility_samples == 0 {
            0.0
        } else {
            self.total_volatility as f64 / self.volatility_samples as f64
        }
    }

    /// Record one NVMM line write with its cause.
    pub(crate) fn record_write(&mut self, cause: WriteCause) {
        match cause {
            WriteCause::Eviction => self.nvmm_writes_eviction += 1,
            WriteCause::Flush => self.nvmm_writes_flush += 1,
            WriteCause::Clwb => self.nvmm_writes_clwb += 1,
            WriteCause::Cleaner => self.nvmm_writes_cleaner += 1,
            WriteCause::Drain => self.nvmm_writes_drain += 1,
        }
    }

    /// Record a volatility-duration sample.
    pub(crate) fn record_volatility(&mut self, cycles: u64) {
        self.max_volatility = self.max_volatility.max(cycles);
        self.total_volatility += cycles;
        self.volatility_samples += 1;
        self.volatility_hist.record(cycles);
    }
}

/// Complete statistics for one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Shared memory-system counters.
    pub mem: MemStats,
}

impl SimStats {
    /// Execution time: the maximum core cycle count (cores run in parallel).
    pub fn exec_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Aggregate of all per-core counters (cycles = max across cores).
    pub fn core_totals(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for c in &self.cores {
            total.merge(c);
        }
        total
    }

    /// Total dynamic instructions across cores.
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Total NVMM writes (the write-amplification numerator).
    pub fn nvmm_writes(&self) -> u64 {
        self.mem.nvmm_writes()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let t = self.core_totals();
        format!(
            "cycles={} insts={} loads={} stores={} flushes={} fences={} \
             l2mr={:.4} nvmm_writes={} (evict={} flush={} clwb={} cleaner={} drain={}) maxvdur={}",
            self.exec_cycles(),
            t.instructions,
            t.loads,
            t.stores,
            t.flushes,
            t.fences,
            self.mem.l2_miss_rate(),
            self.nvmm_writes(),
            self.mem.nvmm_writes_eviction,
            self.mem.nvmm_writes_flush,
            self.mem.nvmm_writes_clwb,
            self.mem.nvmm_writes_cleaner,
            self.mem.nvmm_writes_drain,
            self.mem.max_volatility,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cause_breakdown_sums() {
        let mut m = MemStats::default();
        m.record_write(WriteCause::Eviction);
        m.record_write(WriteCause::Eviction);
        m.record_write(WriteCause::Flush);
        m.record_write(WriteCause::Cleaner);
        m.record_write(WriteCause::Clwb);
        m.record_write(WriteCause::Drain);
        assert_eq!(m.nvmm_writes(), 6);
        assert_eq!(m.nvmm_writes_eviction, 2);
        assert_eq!(m.nvmm_writes_flush, 1);
    }

    #[test]
    fn l2_miss_rate_handles_zero() {
        let m = MemStats::default();
        assert_eq!(m.l2_miss_rate(), 0.0);
        let m = MemStats {
            l2_hits: 90,
            l2_misses: 10,
            ..Default::default()
        };
        assert!((m.l2_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn volatility_tracking() {
        let mut m = MemStats::default();
        m.record_volatility(10);
        m.record_volatility(50);
        m.record_volatility(30);
        assert_eq!(m.max_volatility, 50);
        assert_eq!(m.volatility_samples, 3);
        assert!((m.mean_volatility() - 30.0).abs() < 1e-12);
        assert_eq!(m.volatility_hist.samples(), 3);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Log2Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 8);
        // 0 and 1 land in bucket 0.
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets[0], (1, 2));
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(1 << 16));
        assert!(h.percentile(50.0).unwrap() <= 100);
        let mut other = Log2Histogram::default();
        other.record(1000);
        h.merge(&other);
        assert_eq!(h.samples(), 9);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let h = Log2Histogram::default();
        assert_eq!(h.percentile(50.0), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = Log2Histogram::default().percentile(101.0);
    }

    #[test]
    fn exec_cycles_is_max_core() {
        let stats = SimStats {
            cores: vec![
                CoreStats {
                    cycles: 10,
                    ..Default::default()
                },
                CoreStats {
                    cycles: 42,
                    ..Default::default()
                },
            ],
            mem: MemStats::default(),
        };
        assert_eq!(stats.exec_cycles(), 42);
    }

    #[test]
    fn merge_accumulates_and_maxes() {
        let a = CoreStats {
            cycles: 5,
            loads: 1,
            fuw_events: 2,
            ..Default::default()
        };
        let mut b = CoreStats {
            cycles: 3,
            loads: 4,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.cycles, 5);
        assert_eq!(b.loads, 5);
        assert_eq!(b.fuw_events, 2);
    }

    #[test]
    fn summary_is_nonempty() {
        let s = SimStats::default();
        assert!(s.summary().contains("cycles=0"));
    }
}

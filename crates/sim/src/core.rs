//! Per-core execution model and the [`CoreCtx`] operation API.
//!
//! Each logical core has its own cycle clock, a load queue, a store queue
//! (stores *and* cache-line flushes occupy entries until their writeback
//! completes — this is what makes Eager Persistency pile up FUW hazards in
//! Table VI), a set of MSHRs bounding outstanding L1 misses, and a pending
//! drain time that `sfence` waits for.
//!
//! Kernels never touch the caches directly; they issue operations through
//! [`CoreCtx`], which charges time, applies the functional effect through
//! [`crate::memsys::MemSystem`], and maintains the hazard counters.

use std::collections::VecDeque;

use crate::addr::{Addr, LineAddr};
use crate::config::MachineConfig;
use crate::mem::{PArray, Scalar};
use crate::memsys::MemSystem;
use crate::stats::CoreStats;

/// Architectural state of one logical core.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Core index (bit position in directory masks).
    pub id: usize,
    /// Core-local cycle clock.
    pub cycles: u64,
    /// Sub-issue-width remainder for the compute model.
    compute_rem: u64,
    /// Completion times of in-flight loads.
    lq: VecDeque<u64>,
    /// Completion times of in-flight stores/flushes.
    sq: VecDeque<u64>,
    /// Busy-until times of the miss-status-holding registers.
    mshr: Vec<u64>,
    /// Latest completion among stores/flushes since the last fence.
    pending_drain: u64,
    /// Completion of the youngest store-buffer entry: the buffer drains
    /// in order (x86-TSO), so later entries complete no earlier.
    sq_chain: u64,
    /// `log2(issue_width)` when the width is a power of two, letting the
    /// per-op issue accounting use shifts instead of hardware division.
    width_shift: Option<u32>,
    /// Whether `load_queue + store_queue >= rob_entries`, i.e. whether the
    /// ROB-full condition in [`CoreCtx::compute`] is reachable at all for
    /// this configuration (both queues are capped, so when their combined
    /// capacity is below the ROB size the check can be skipped).
    rob_reachable: bool,
    /// Event counters.
    pub stats: CoreStats,
}

impl CoreState {
    /// Fresh core `id` for configuration `cfg`.
    pub fn new(id: usize, cfg: &MachineConfig) -> Self {
        CoreState {
            id,
            cycles: 0,
            compute_rem: 0,
            lq: VecDeque::with_capacity(cfg.load_queue),
            sq: VecDeque::with_capacity(cfg.store_queue),
            mshr: vec![0u64; cfg.mshrs],
            pending_drain: 0,
            sq_chain: 0,
            width_shift: if cfg.issue_width.is_power_of_two() {
                Some(cfg.issue_width.trailing_zeros())
            } else {
                None
            },
            rob_reachable: cfg.load_queue + cfg.store_queue >= cfg.rob_entries,
            stats: CoreStats::default(),
        }
    }

    /// Charge `slots` issue slots through the sub-width accumulator (the
    /// shared cost model of `compute` and pipelined L1-hit loads).
    #[inline]
    fn advance_issue_slots(&mut self, slots: u64, width: u64) {
        let total = self.compute_rem + slots;
        if let Some(s) = self.width_shift {
            self.cycles += total >> s;
            self.compute_rem = total & (width - 1);
        } else {
            self.cycles += total / width;
            self.compute_rem = total % width;
        }
    }

    /// Reset transient state (queues, clock) but keep the identity.
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.compute_rem = 0;
        self.lq.clear();
        self.sq.clear();
        self.mshr.iter_mut().for_each(|t| *t = 0);
        self.pending_drain = 0;
        self.sq_chain = 0;
        self.stats = CoreStats::default();
    }

    /// Number of in-flight ops (completion after `now`) across both queues.
    ///
    /// Both queues hold nondecreasing completion times (see
    /// [`CoreState::push_sorted`]), so this is a binary search, not a scan.
    fn backlog(&self, now: u64) -> usize {
        Self::in_flight(&self.lq, now) + Self::in_flight(&self.sq, now)
    }

    /// Entries of a sorted queue with completion after `now`.
    fn in_flight(q: &VecDeque<u64>, now: u64) -> usize {
        let (a, b) = q.as_slices();
        if b.first().is_some_and(|&t| t <= now) {
            // Everything in `a` precedes (≤) b's first element.
            b.len() - b.partition_point(|&t| t <= now)
        } else {
            (a.len() - a.partition_point(|&t| t <= now)) + b.len()
        }
    }

    /// Drop completed entries (`<= now`) from the front of a sorted queue.
    fn drain_queue(q: &mut VecDeque<u64>, now: u64) {
        while q.front().is_some_and(|&t| t <= now) {
            q.pop_front();
        }
    }

    /// Append a completion time, asserting (debug only) the queue stays
    /// sorted: load completions are pushed at the core's nondecreasing
    /// clock, and store/flush completions are chained through `sq_chain`.
    fn push_sorted(q: &mut VecDeque<u64>, t: u64) {
        debug_assert!(q.back().is_none_or(|&b| b <= t), "queue must stay sorted");
        q.push_back(t);
    }

    /// Attribute a pipeline stall: while the core cannot issue, the
    /// would-have-issued instruction mix piles up against the functional
    /// units. This is the proxy behind Table VI's FUI/FUR columns (the
    /// paper counts per-cycle cannot-issue events in gem5): roughly half
    /// the blocked issue slots are integer ops, 40% are loads.
    fn account_blocked_issue(&mut self, stall: u64, width: u64) {
        self.stats.fui_events += stall * width / 2;
        self.stats.fur_events += stall * width * 2 / 5;
    }

    /// Reserve a load-queue slot, stalling (and counting FUR events) if
    /// the queue is full.
    fn acquire_lq_slot(&mut self, cap: usize, width: u64) {
        Self::drain_queue(&mut self.lq, self.cycles);
        if self.lq.len() >= cap {
            let min = *self.lq.front().expect("non-empty");
            self.stats.fur_events += 1;
            let stall = min.saturating_sub(self.cycles);
            self.account_blocked_issue(stall, width);
            self.cycles = self.cycles.max(min);
            Self::drain_queue(&mut self.lq, self.cycles);
        }
    }

    /// Reserve a store-queue slot, stalling (and counting FUW events) if
    /// the queue is full.
    fn acquire_sq_slot(&mut self, cap: usize, width: u64) {
        Self::drain_queue(&mut self.sq, self.cycles);
        if self.sq.len() >= cap {
            let min = *self.sq.front().expect("non-empty");
            self.stats.fuw_events += 1;
            let stall = min.saturating_sub(self.cycles);
            self.account_blocked_issue(stall, width);
            self.cycles = self.cycles.max(min);
            Self::drain_queue(&mut self.sq, self.cycles);
        }
    }

    /// Reserve an MSHR, stalling (and counting an MSHR-full event) if all
    /// are busy. Returns the index to mark busy afterwards. Both demand
    /// misses and cache-line flushes occupy MSHRs (flushes hold theirs
    /// until the writeback is accepted — this is why Eager Persistency
    /// inflates the MSHR-full count in Table VI).
    fn acquire_mshr(&mut self, width: u64) -> usize {
        if let Some(i) = self.mshr.iter().position(|&t| t <= self.cycles) {
            return i;
        }
        let (idx, &min) = self
            .mshr
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("mshrs non-empty");
        self.stats.mshr_full_events += 1;
        let stall = min.saturating_sub(self.cycles);
        self.account_blocked_issue(stall, width);
        self.cycles = self.cycles.max(min);
        idx
    }
}

/// The operation interface a simulated thread uses to touch persistent
/// memory. Borrows one core plus the shared memory system; the scheduler
/// in [`crate::machine::Machine`] constructs these.
///
/// After a crash every operation becomes a no-op (loads return the default
/// value); check [`CoreCtx::crashed`] at convenient boundaries.
#[derive(Debug)]
pub struct CoreCtx<'a> {
    /// The executing core.
    pub core: &'a mut CoreState,
    /// The shared memory system.
    pub mem: &'a mut MemSystem,
}

impl<'a> CoreCtx<'a> {
    /// Create a context (normally done by the machine/scheduler).
    pub fn new(core: &'a mut CoreState, mem: &'a mut MemSystem) -> Self {
        CoreCtx { core, mem }
    }

    /// Current core-local cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.core.cycles
    }

    /// Whether the machine has crashed.
    #[inline]
    pub fn crashed(&self) -> bool {
        self.mem.crashed()
    }

    /// This core's id (used as the thread id in checksum keys).
    #[inline]
    pub fn core_id(&self) -> usize {
        self.core.id
    }

    /// Model `ops` ALU/FPU operations: advances the clock by
    /// `ops / issue_width` cycles (with carry) and counts instructions.
    pub fn compute(&mut self, ops: u64) {
        if self.crashed() {
            return;
        }
        self.core.stats.instructions += ops;
        let width = self.mem.cfg.issue_width;
        self.core.advance_issue_slots(ops, width);
        if self.core.rob_reachable
            && self.core.backlog(self.core.cycles) >= self.mem.cfg.rob_entries
        {
            self.core.stats.fui_events += 1;
        }
    }

    /// Ensure `line` is usable in this core's L1 and return the access
    /// outcome plus the L1 way holding the line, so the caller's scalar
    /// read/write needs no further lookup.
    fn access_line(&mut self, line: LineAddr, for_write: bool) -> (crate::memsys::Access, usize) {
        // MSHR acquisition needs to know hit/miss before paying costs. A
        // resident line in any valid state counts as an L1 probe hit for
        // MSHR purposes (upgrades do not take an MSHR). The probe result
        // (the resident way, if any) is handed to the memory system so
        // the set-associative lookup happens exactly once per operation.
        let probe = self.mem.l1_probe(self.core.id, line);
        let mshr_idx = if probe.is_some() {
            None
        } else {
            Some(self.core.acquire_mshr(self.mem.cfg.issue_width))
        };
        let (access, way) =
            self.mem
                .ensure_in_l1_probed(self.core.id, line, self.core.cycles, for_write, probe);
        if access.l1_hit {
            self.core.stats.l1_hits += 1;
        } else {
            self.core.stats.l1_misses += 1;
        }
        if let Some(i) = mshr_idx {
            self.core.mshr[i] = self.core.cycles + access.cost;
        }
        (access, way)
    }

    /// Timed load of element `i` of `arr`.
    ///
    /// Returns `T::default()` after a crash.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn load<T: Scalar>(&mut self, arr: PArray<T>, i: usize) -> T {
        let addr = arr.addr(i);
        self.load_addr(addr)
    }

    /// Timed load of a scalar at raw address `addr`.
    pub fn load_addr<T: Scalar>(&mut self, addr: Addr) -> T {
        if self.crashed() {
            return T::default();
        }
        self.core.stats.loads += 1;
        self.core.stats.instructions += 1;
        self.core
            .acquire_lq_slot(self.mem.cfg.load_queue, self.mem.cfg.issue_width);
        let line = addr.line();
        let (access, way) = self.access_line(line, false);
        if access.l1_hit {
            // L1 hits are fully pipelined on an out-of-order core: they
            // cost load-port throughput, not latency. Model as two issue
            // slots through the same accumulator `compute` uses.
            let width = self.mem.cfg.issue_width;
            self.core.advance_issue_slots(2, width);
        } else {
            // Misses: the L1 round-trip serializes, but everything beyond
            // it (L2 latency, queueing, NVMM residency) overlaps across
            // the MSHRs of an out-of-order core — charge 1/mlp of it.
            let l1 = self.mem.cfg.l1_latency;
            let charged = l1 + access.cost.saturating_sub(l1) / self.mem.cfg.mlp;
            self.core.cycles += charged;
        }
        CoreState::push_sorted(&mut self.core.lq, self.core.cycles);
        let v = self.mem.l1_read_scalar_at::<T>(self.core.id, way, addr);
        self.mem
            .observe_load(self.core.id, self.core.cycles, addr, T::SIZE);
        // Loads advance the op clock but are not crash-point candidates.
        self.mem.after_op(self.core.cycles, false);
        v
    }

    /// Timed store of `v` into element `i` of `arr`.
    ///
    /// The store is architecturally performed immediately; its writeback
    /// cost is charged to the store queue (the core pays one issue cycle),
    /// so independent stores overlap like a store buffer would.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn store<T: Scalar>(&mut self, arr: PArray<T>, i: usize, v: T) {
        let addr = arr.addr(i);
        self.store_addr(addr, v);
    }

    /// Timed store of a scalar at raw address `addr`.
    pub fn store_addr<T: Scalar>(&mut self, addr: Addr, v: T) {
        if self.crashed() {
            return;
        }
        self.core.stats.stores += 1;
        self.core.stats.instructions += 1;
        self.core
            .acquire_sq_slot(self.mem.cfg.store_queue, self.mem.cfg.issue_width);
        let line = addr.line();
        let (access, way) = self.access_line(line, true);
        self.mem.l1_write_scalar_at::<T>(self.core.id, way, addr, v);
        self.core.cycles += 1; // issue; completion tracked in the SQ
                               // The store buffer drains in order (x86-TSO): this entry cannot
                               // complete before its elders.
        let completion = (self.core.cycles + access.cost).max(self.core.sq_chain);
        self.core.sq_chain = completion;
        CoreState::push_sorted(&mut self.core.sq, completion);
        self.core.pending_drain = self.core.pending_drain.max(completion);
        self.mem
            .observe_store(self.core.id, self.core.cycles, addr, v.to_bits64(), T::SIZE);
        self.mem.after_op(self.core.cycles, true);
    }

    /// Batched fused-multiply-add dispatch over paired load runs: starting
    /// from accumulator `init`, for each `t` in `0..n` loads `a[a0 + t]`
    /// and `b[b0 + t * b_stride]`, adds `sign` times their product, and
    /// models `ops_per_iter` ALU ops. `sign` must be `1.0` or `-1.0`:
    /// IEEE-754 negation is exact, so `sum + (-av) * bv` is bit-identical
    /// to `sum - av * bv` and the accumulator matches the open-coded
    /// add- or subtract-loop rounding step for rounding step. The per-op
    /// order — and therefore every cycle and stat — is also identical;
    /// batching only lets the kernel pay one dispatch per run while the
    /// memory system services the ops in a tight loop.
    ///
    /// # Panics
    ///
    /// Panics if either run goes out of bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn fma_run(
        &mut self,
        a: PArray<f64>,
        a0: usize,
        b: PArray<f64>,
        b0: usize,
        b_stride: usize,
        n: usize,
        ops_per_iter: u64,
        sign: f64,
        init: f64,
    ) -> f64 {
        debug_assert!(sign == 1.0 || sign == -1.0, "sign must be ±1.0");
        let mut sum = init;
        for t in 0..n {
            let av: f64 = self.load(a, a0 + t);
            let bv: f64 = self.load(b, b0 + t * b_stride);
            sum += (sign * av) * bv;
            self.compute(ops_per_iter);
        }
        sum
    }

    /// Batched store run: store `v` into `arr[start..start + count]` in
    /// index order, timing-identical to `count` individual stores (used by
    /// the kernels' strip-zeroing rebuild paths).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn store_run<T: Scalar>(&mut self, arr: PArray<T>, start: usize, count: usize, v: T) {
        for i in start..start + count {
            self.store(arr, i, v);
        }
    }

    /// Batched load-and-fold run: load `arr[start..start + count]` in
    /// index order, pass each value to `fold`, and model `ops_per_elem`
    /// ALU ops after each load — the shape of a checksum recomputation —
    /// timing-identical to the open-coded loop.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn load_fold<T: Scalar>(
        &mut self,
        arr: PArray<T>,
        start: usize,
        count: usize,
        ops_per_elem: u64,
        mut fold: impl FnMut(T),
    ) {
        for i in start..start + count {
            let v = self.load(arr, i);
            fold(v);
            self.compute(ops_per_elem);
        }
    }

    /// `clflushopt`: flush the line containing `addr` out of all caches,
    /// writing it to NVMM (durable on acceptance, per ADR) if dirty.
    /// Posted: the core pays a small issue cost; `sfence` waits for the
    /// writeback.
    pub fn clflushopt(&mut self, addr: Addr) {
        self.flush_impl(addr, false);
    }

    /// `clwb`: write the line back if dirty but retain a clean copy.
    pub fn clwb(&mut self, addr: Addr) {
        self.flush_impl(addr, true);
    }

    fn flush_impl(&mut self, addr: Addr, keep: bool) {
        if self.crashed() {
            return;
        }
        if keep {
            self.core.stats.writebacks_issued += 1;
        } else {
            self.core.stats.flushes += 1;
        }
        self.core.stats.instructions += 1;
        self.core
            .acquire_sq_slot(self.mem.cfg.store_queue, self.mem.cfg.issue_width);
        // A flush occupies an MSHR until its writeback completes, like any
        // other request that leaves the core; waiting for one is a
        // write-resource (FUW) hazard on top of the MSHR-full event.
        let before = self.core.cycles;
        let mshr = self.core.acquire_mshr(self.mem.cfg.issue_width);
        if self.core.cycles > before {
            self.core.stats.fuw_events += 1;
        }
        let out = self
            .mem
            .flush_line(addr.line(), self.core.cycles, keep, self.core.id);
        self.core.mshr[mshr] = out.completion.max(self.core.cycles);
        self.core.cycles += out.issue_cost;
        let completion = out.completion.max(self.core.cycles).max(self.core.sq_chain);
        self.core.sq_chain = completion;
        CoreState::push_sorted(&mut self.core.sq, completion);
        self.core.pending_drain = self.core.pending_drain.max(completion);
        self.mem
            .observe_flush(self.core.id, self.core.cycles, addr.line(), keep);
        self.mem.after_op(self.core.cycles, true);
    }

    /// Flush every line covering elements `[start, start+count)` of `arr`
    /// with `clflushopt`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn flush_range<T: Scalar>(&mut self, arr: PArray<T>, start: usize, count: usize) {
        let lines: Vec<LineAddr> = arr.lines_of_range(start, count).collect();
        for line in lines {
            self.clflushopt(line.base());
        }
    }

    /// `sfence`: stall until every prior store and flush issued by this
    /// core has completed (is durable, for flushes, per ADR).
    pub fn sfence(&mut self) {
        if self.crashed() {
            return;
        }
        self.core.stats.fences += 1;
        self.core.stats.instructions += 1;
        if self.core.pending_drain > self.core.cycles {
            let stall = self.core.pending_drain - self.core.cycles;
            self.core.stats.fence_stall_cycles += stall;
            let width = self.mem.cfg.issue_width;
            self.core.account_blocked_issue(stall, width);
            self.core.cycles = self.core.pending_drain;
        }
        self.core.pending_drain = 0;
        // ADR: every flush this core issued before the fence is now
        // guaranteed durable (crash-state tracking only).
        self.mem.retire_pending_flushes(self.core.id);
        self.mem.observe_sfence(self.core.id, self.core.cycles);
        self.mem.after_op(self.core.cycles, true);
    }

    /// Announce the start of a persistency region with checksum-table /
    /// marker key `key` to any installed observer (see [`crate::observe`]).
    ///
    /// Purely observational — no timing or functional effect. The scheme
    /// layer (`lp-core`) calls this from its `begin`; kernels normally
    /// never call it directly.
    pub fn region_begin(&mut self, key: usize) -> crate::observe::RegionId {
        self.mem
            .announce_region_begin(self.core.id, self.core.cycles, key)
    }

    /// Announce the end (commit) of this core's open persistency region.
    pub fn region_end(&mut self) {
        self.mem.announce_region_end(self.core.id, self.core.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(2)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn load_store_roundtrip_and_timing() {
        let mut m = machine();
        let arr = m.alloc::<f64>(16).unwrap();
        let mut ctx = m.ctx(0);
        ctx.store(arr, 3, 2.5);
        let t_after_store = ctx.now();
        assert!(t_after_store > 0);
        let v: f64 = ctx.load(arr, 3);
        assert_eq!(v, 2.5);
        assert_eq!(ctx.core.stats.loads, 1);
        assert_eq!(ctx.core.stats.stores, 1);
        // Second load is an L1 hit: pipelined, at most one cycle.
        let before = ctx.now();
        let _: f64 = ctx.load(arr, 3);
        assert!(ctx.now() - before <= 1);
    }

    #[test]
    fn compute_respects_issue_width() {
        let mut m = machine();
        let mut ctx = m.ctx(0);
        ctx.compute(8); // 8 ops / 4-wide = 2 cycles
        assert_eq!(ctx.now(), 2);
        ctx.compute(2); // remainder accumulates
        assert_eq!(ctx.now(), 2);
        ctx.compute(2);
        assert_eq!(ctx.now(), 3);
        assert_eq!(ctx.core.stats.instructions, 12);
    }

    #[test]
    fn sfence_waits_for_flush_completion() {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        let mut ctx = m.ctx(0);
        ctx.store(arr, 0, 1.0);
        let before = ctx.now();
        ctx.clflushopt(arr.addr(0));
        ctx.sfence();
        // Fence had to wait roughly an NVMM write latency.
        assert!(ctx.now() >= before + ctx.mem.cfg.nvmm_write_cycles());
        assert!(ctx.core.stats.fence_stall_cycles > 0);
        assert_eq!(ctx.core.stats.fences, 1);
        // A second fence with nothing pending is free.
        let t = ctx.now();
        ctx.sfence();
        assert_eq!(ctx.now(), t);
    }

    #[test]
    fn store_queue_fills_under_flush_pressure() {
        let mut m = machine();
        let arr = m.alloc::<f64>(8 * 1024).unwrap();
        let mut ctx = m.ctx(0);
        // Store + flush every line back-to-back: flush completions are slow
        // (NVMM write latency), so the 48-entry SQ must fill.
        for i in 0..1024 {
            ctx.store(arr, i * 8, i as f64);
            ctx.clflushopt(arr.addr(i * 8));
        }
        assert!(
            ctx.core.stats.fuw_events > 0,
            "expected FUW structural hazards under flush pressure"
        );
    }

    #[test]
    fn crash_makes_ops_inert() {
        let mut m = machine();
        let arr = m.alloc::<f64>(8).unwrap();
        m.mem_mut().force_crash();
        let mut ctx = m.ctx(0);
        ctx.store(arr, 0, 9.0);
        let v: f64 = ctx.load(arr, 0);
        assert_eq!(v, 0.0);
        assert_eq!(ctx.now(), 0);
        ctx.sfence();
        ctx.compute(100);
        assert_eq!(ctx.now(), 0);
    }

    #[test]
    fn flush_range_covers_all_lines() {
        let mut m = machine();
        let arr = m.alloc::<f64>(64).unwrap(); // 8 lines
        {
            let mut ctx = m.ctx(0);
            for i in 0..64 {
                ctx.store(arr, i, i as f64);
            }
            ctx.flush_range(arr, 0, 64);
            ctx.sfence();
            assert_eq!(ctx.core.stats.flushes, 8);
            assert_eq!(ctx.mem.stats.nvmm_writes_flush, 8);
        }
        // All values durable.
        for i in 0..64 {
            assert_eq!(m.peek(arr, i), i as f64);
        }
    }
}

//! Observer hook over the simulator's memory-event stream.
//!
//! External tools (the `lp-check` persistency sanitizer in particular) can
//! install an [`EventSink`] on a machine and receive every store, load,
//! flush, fence, durable writeback, barrier, region boundary, and crash as
//! it happens — with the issuing core, its cycle clock, and the dynamic
//! region the core was executing.
//!
//! The hook is strictly opt-in: a default-constructed machine holds an
//! empty [`ObserverSlot`] (no allocation), every emission site is guarded
//! by a single `Option` check, and the observer can only *watch* — it
//! receives events by reference and has no channel back into the timing or
//! functional model, so instrumented runs report bit-identical cycle
//! counts and statistics.
//!
//! Sinks are held behind `Arc<Mutex<…>>` and must be `Send` so that a
//! fully-instrumented machine remains `Send` and can be driven by the
//! parallel exploration engine. The mutex is uncontended in practice —
//! each machine runs on exactly one host thread at a time — so the lock
//! is a cheap formality, not a synchronization point.

use std::sync::{Arc, Mutex};

use crate::addr::{Addr, LineAddr};
use crate::stats::WriteCause;

/// Identity of one dynamic region execution.
///
/// Assigned from a machine-global monotonic counter when the region is
/// announced via [`crate::core::CoreCtx::region_begin`]; two executions of
/// the same static region (same checksum key) get distinct ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// One observable memory-system event.
///
/// `region` fields carry the dynamic region the issuing core had open (via
/// [`crate::core::CoreCtx::region_begin`]) at the time of the event, or
/// `None` outside any region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemEvent {
    /// A timed scalar store was architecturally performed.
    Store {
        /// Issuing core.
        core: usize,
        /// Core-local cycle at issue.
        cycle: u64,
        /// Byte address written.
        addr: Addr,
        /// Value written, widened to a 64-bit little-endian bit pattern.
        bits: u64,
        /// Scalar size in bytes.
        size: usize,
        /// Open region of the issuing core, if any.
        region: Option<RegionId>,
    },
    /// A timed scalar load completed.
    Load {
        /// Issuing core.
        core: usize,
        /// Core-local cycle at issue.
        cycle: u64,
        /// Byte address read.
        addr: Addr,
        /// Scalar size in bytes.
        size: usize,
        /// Open region of the issuing core, if any.
        region: Option<RegionId>,
    },
    /// A `clflushopt` (`keep == false`) or `clwb` (`keep == true`) was
    /// issued for a line (whether or not it was dirty).
    Flush {
        /// Issuing core.
        core: usize,
        /// Core-local cycle at issue.
        cycle: u64,
        /// The targeted line.
        line: LineAddr,
        /// `true` for `clwb` (line retained clean), `false` for
        /// `clflushopt` (line invalidated).
        keep: bool,
        /// Open region of the issuing core, if any.
        region: Option<RegionId>,
    },
    /// An `sfence` retired: every prior store/flush of the core is now
    /// complete (durable, for flushes, per ADR).
    Sfence {
        /// Issuing core.
        core: usize,
        /// Core-local cycle after the fence drained.
        cycle: u64,
        /// Open region of the issuing core, if any.
        region: Option<RegionId>,
    },
    /// A line's current contents reached the durable NVMM image (natural
    /// eviction, explicit flush/clwb, cleaner sweep, or harness drain).
    LineDurable {
        /// The line written back.
        line: LineAddr,
        /// Global time of the writeback.
        cycle: u64,
        /// Why the line was written.
        cause: WriteCause,
    },
    /// The scheduler released a synchronization barrier; all waiting
    /// cores' clocks were aligned to `cycle`.
    Barrier {
        /// The post-barrier common cycle.
        cycle: u64,
    },
    /// A core announced the start of a persistency region.
    RegionBegin {
        /// The core opening the region.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
        /// The new region's dynamic identity.
        region: RegionId,
        /// The region's checksum-table / marker key.
        key: usize,
    },
    /// A core announced the end (commit) of its open persistency region.
    RegionCommit {
        /// The core committing.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
        /// The closed region's dynamic identity.
        region: RegionId,
        /// The region's checksum-table / marker key.
        key: usize,
    },
    /// The machine lost power: every cached (non-durable) line is gone.
    Crash {
        /// Global time of the crash.
        cycle: u64,
    },
}

/// Receiver of the event stream.
///
/// Implementations observe only — the simulator's behaviour is identical
/// with or without a sink installed.
pub trait EventSink {
    /// Called once per event, in simulation order.
    fn on_event(&mut self, ev: &MemEvent);
}

/// Shared handle to an installed sink (the machine and the caller both
/// keep one so the caller can inspect accumulated state after a run).
pub type SharedSink = Arc<Mutex<dyn EventSink + Send>>;

/// The memory system's (optional) observer.
///
/// Defaults to empty; [`crate::machine::Machine::set_observer`] installs a
/// sink. A newtype rather than a bare `Option` so the containing structs
/// can keep deriving `Debug`.
#[derive(Default)]
pub struct ObserverSlot(Option<SharedSink>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(installed)"
        } else {
            "ObserverSlot(none)"
        })
    }
}

impl ObserverSlot {
    /// Install a sink (replacing any previous one).
    pub fn install(&mut self, sink: SharedSink) {
        self.0 = Some(sink);
    }

    /// Remove the sink, restoring the zero-overhead default.
    pub fn clear(&mut self) {
        self.0 = None;
    }

    /// Whether a sink is installed (the emission-site guard).
    #[inline]
    pub fn is_some(&self) -> bool {
        self.0.is_some()
    }

    /// Deliver one event to the sink, if any.
    #[inline]
    pub fn emit(&self, ev: MemEvent) {
        if let Some(sink) = &self.0 {
            sink.lock().unwrap().on_event(&ev);
        }
    }
}

/// Store/flush/fence counters for one bucket of the event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCounts {
    /// Timed scalar stores.
    pub stores: u64,
    /// `clflushopt`/`clwb` issues.
    pub flushes: u64,
    /// Retired `sfence`s.
    pub fences: u64,
}

impl RegionCounts {
    fn add(&mut self, other: RegionCounts) {
        self.stores += other.stores;
        self.flushes += other.flushes;
        self.fences += other.fences;
    }
}

/// An [`EventSink`] that tallies stores, flushes, and fences per dynamic
/// region, with a separate bucket for activity outside any region.
///
/// This is the measurement side of `lp-lint --cost-check`: a `Base`-scheme
/// run yields the structural counts (in-region stores `S`, region commits
/// `C`) that the static cost model multiplies into per-scheme flush/fence
/// predictions, and an instrumented scheme run yields the in-region
/// counters those predictions are held against.
#[derive(Debug, Clone, Default)]
pub struct RegionTally {
    /// Per-region counters, keyed by [`RegionId`] value.
    pub regions: std::collections::BTreeMap<u64, RegionCounts>,
    /// Counters for events issued with no region open.
    pub outside: RegionCounts,
    /// `RegionBegin` events seen.
    pub begins: u64,
    /// `RegionCommit` events seen.
    pub commits: u64,
}

impl RegionTally {
    /// New shareable tally; clone the `Arc` into
    /// [`crate::machine::Machine::set_observer`] (the `Arc<Mutex<RegionTally>>`
    /// coerces to [`SharedSink`]) and keep one handle to read back.
    pub fn shared() -> Arc<Mutex<RegionTally>> {
        Arc::new(Mutex::new(RegionTally::default()))
    }

    /// Sum of all in-region buckets.
    pub fn in_region(&self) -> RegionCounts {
        let mut total = RegionCounts::default();
        for c in self.regions.values() {
            total.add(*c);
        }
        total
    }

    fn bucket(&mut self, region: Option<RegionId>) -> &mut RegionCounts {
        match region {
            Some(r) => self.regions.entry(r.0).or_default(),
            None => &mut self.outside,
        }
    }
}

impl EventSink for RegionTally {
    fn on_event(&mut self, ev: &MemEvent) {
        match *ev {
            MemEvent::Store { region, .. } => self.bucket(region).stores += 1,
            MemEvent::Flush { region, .. } => self.bucket(region).flushes += 1,
            MemEvent::Sfence { region, .. } => self.bucket(region).fences += 1,
            MemEvent::RegionBegin { region, .. } => {
                self.begins += 1;
                self.regions.entry(region.0).or_default();
            }
            MemEvent::RegionCommit { .. } => self.commits += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector(Vec<MemEvent>);
    impl EventSink for Collector {
        fn on_event(&mut self, ev: &MemEvent) {
            self.0.push(*ev);
        }
    }

    #[test]
    fn empty_slot_drops_events() {
        let slot = ObserverSlot::default();
        assert!(!slot.is_some());
        slot.emit(MemEvent::Barrier { cycle: 1 }); // no sink: no effect
    }

    #[test]
    fn installed_slot_delivers_in_order() {
        let sink = Arc::new(Mutex::new(Collector::default()));
        let mut slot = ObserverSlot::default();
        slot.install(sink.clone());
        assert!(slot.is_some());
        slot.emit(MemEvent::Barrier { cycle: 1 });
        slot.emit(MemEvent::Crash { cycle: 2 });
        assert_eq!(
            sink.lock().unwrap().0,
            vec![MemEvent::Barrier { cycle: 1 }, MemEvent::Crash { cycle: 2 }]
        );
        slot.clear();
        slot.emit(MemEvent::Barrier { cycle: 3 });
        assert_eq!(sink.lock().unwrap().0.len(), 2);
    }

    #[test]
    fn region_id_displays() {
        assert_eq!(RegionId(7).to_string(), "region#7");
    }

    #[test]
    fn region_tally_buckets_by_region() {
        use crate::config::MachineConfig;
        use crate::machine::Machine;

        let mut m = Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(1 << 20),
        );
        let arr = m.alloc::<u64>(64).unwrap();
        let tally = RegionTally::shared();
        m.set_observer(tally.clone());
        {
            let mut ctx = m.ctx(0);
            ctx.store(arr, 0, 1u64); // outside any region
            ctx.region_begin(7);
            ctx.store(arr, 1, 2u64);
            ctx.store(arr, 2, 3u64);
            ctx.clflushopt(arr.addr(1));
            ctx.sfence();
            ctx.region_end();
            ctx.region_begin(8);
            ctx.store(arr, 3, 4u64);
            ctx.region_end();
            ctx.sfence(); // outside again
        }
        let t = tally.lock().unwrap();
        assert_eq!(t.begins, 2);
        assert_eq!(t.commits, 2);
        assert_eq!(t.outside.stores, 1);
        assert_eq!(t.outside.fences, 1);
        assert_eq!(t.outside.flushes, 0);
        assert_eq!(t.regions.len(), 2);
        let total = t.in_region();
        assert_eq!(total.stores, 3);
        assert_eq!(total.flushes, 1);
        assert_eq!(total.fences, 1);
        let per: Vec<u64> = t.regions.values().map(|c| c.stores).collect();
        assert_eq!(per, vec![2, 1]);
    }
}

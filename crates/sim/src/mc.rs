//! Memory-controller timing model with ADR (Asynchronous DRAM Refresh)
//! semantics.
//!
//! The controller has a bounded read queue and a bounded write queue. Per
//! the ADR platform specification the paper builds on, the *write queue is
//! in the non-volatile domain*: a write accepted into the queue is durable
//! even if power fails before the NVMM cells are updated. The functional
//! simulator therefore applies write data to the NVMM image at enqueue
//! time; this model only computes *when* commands complete, for timing.
//!
//! The write queue also **coalesces**: a write to a line that already has
//! a pending (not yet issued) entry merges into it, like a real
//! write-combining controller. Flushing the same line repeatedly in a
//! burst therefore costs fewer NVMM cell writes than flushes issued —
//! this is what keeps flush-per-store Eager Persistency's write
//! amplification at the moderate levels the paper reports rather than one
//! NVMM write per store.

use crate::addr::LineAddr;

/// Timing model for one command queue (read or write).
///
/// Bandwidth is enforced *per slot*: each of the `N` slots accepts a new
/// command every `N × gap` cycles, giving an aggregate rate of one command
/// per `gap` without any global serialization point. This keeps the model
/// correct when logical cores' clocks are skewed (the deterministic
/// scheduler runs regions of different cores back to back in host order,
/// not in simulated-time order).
#[derive(Debug, Clone)]
struct CmdQueue {
    /// Completion time of the command occupying each slot.
    slots: Vec<u64>,
    /// Time at which each slot can accept its next command.
    free_at: Vec<u64>,
    /// The core that last used each slot (`usize::MAX` = background).
    users: Vec<usize>,
    /// Cycles a slot is held per command (`max(latency, N × gap)`).
    hold: u64,
    /// Service latency of one command.
    latency: u64,
}

impl CmdQueue {
    fn new(entries: usize, gap: u64, latency: u64) -> Self {
        CmdQueue {
            slots: vec![0u64; entries],
            free_at: vec![0u64; entries],
            users: vec![usize::MAX; entries],
            hold: latency.max(entries as u64 * gap),
            latency,
        }
    }

    /// Schedule a command arriving at `now`; returns `(slot, completion)`.
    /// If every slot is held past `now`, the command is delayed until the
    /// earliest slot frees (queue backpressure).
    ///
    /// Logical cores submit requests out of simulated-time order (the
    /// scheduler runs their regions back to back). A slot whose state was
    /// set by a *different* core more than one service window in this
    /// request's future cannot actually have contended with it, so it is
    /// treated as free at `now`; a core's own history always applies
    /// (real backpressure).
    fn schedule(&mut self, now: u64, user: usize) -> (usize, u64) {
        let eff = |i: usize| -> u64 {
            if self.users[i] == user || self.free_at[i] <= now + self.hold {
                self.free_at[i]
            } else {
                now
            }
        };
        let idx = (0..self.free_at.len())
            .min_by_key(|&i| eff(i))
            .expect("queue has at least one slot");
        let start = now.max(eff(idx));
        let completion = start + self.latency;
        self.slots[idx] = completion;
        self.free_at[idx] = start + self.hold;
        self.users[idx] = user;
        (idx, completion)
    }

    /// Whether a command completing at `t` is plausibly in flight for a
    /// request arriving at `now` (bounded window, for the same
    /// out-of-order-submission reason as [`CmdQueue::schedule`]).
    fn in_flight_for(&self, t: u64, now: u64) -> bool {
        t > now && t <= now + self.latency + self.hold
    }

    /// Latest completion among outstanding commands.
    fn drained_at(&self) -> u64 {
        self.slots.iter().copied().max().unwrap_or(0)
    }
}

/// Result of scheduling a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// When the NVMM device finishes the (possibly merged) write.
    pub completion: u64,
    /// Whether the write merged into a pending same-line entry (no new
    /// NVMM cell write).
    pub merged: bool,
}

/// The NVMM memory controller: read queue + coalescing ADR write queue.
#[derive(Debug, Clone)]
pub struct MemCtrl {
    reads: CmdQueue,
    writes: CmdQueue,
    /// Line occupying each write slot (`u64::MAX` = none).
    write_lines: Vec<u64>,
    /// Reads scheduled (media accesses).
    pub read_cmds: u64,
    /// Reads serviced by write-queue forwarding.
    pub read_forwards: u64,
    /// Writes scheduled (excluding merges).
    pub write_cmds: u64,
    /// Writes merged into pending entries.
    pub write_merges: u64,
}

impl MemCtrl {
    /// Build from configuration values (queue entries, command gaps,
    /// service latencies — all in core cycles).
    pub fn new(
        read_entries: usize,
        write_entries: usize,
        read_gap: u64,
        write_gap: u64,
        read_latency: u64,
        write_latency: u64,
    ) -> Self {
        MemCtrl {
            reads: CmdQueue::new(read_entries, read_gap, read_latency),
            writes: CmdQueue::new(write_entries, write_gap, write_latency),
            write_lines: vec![u64::MAX; write_entries],
            read_cmds: 0,
            read_forwards: 0,
            write_cmds: 0,
            write_merges: 0,
        }
    }

    /// Schedule a line read arriving at `now`; returns `(completion,
    /// forwarded)`. A read whose line sits in the write queue (pending or
    /// still completing) is serviced by store-to-load forwarding at
    /// `forward_latency` instead of a media access.
    pub fn schedule_read(
        &mut self,
        line: LineAddr,
        now: u64,
        forward_latency: u64,
        core: usize,
    ) -> (u64, bool) {
        for (i, &l) in self.write_lines.iter().enumerate() {
            if l == line.0 && self.writes.in_flight_for(self.writes.slots[i], now) {
                self.read_forwards += 1;
                return (now + forward_latency, true);
            }
        }
        self.read_cmds += 1;
        (self.reads.schedule(now, core).1, false)
    }

    /// Schedule a line write arriving at `now`. Durable immediately
    /// (ADR); the completion time is what `sfence` waits for. Merges into
    /// an in-flight same-line entry when possible (write combining at the
    /// queue/row-buffer).
    pub fn schedule_write(&mut self, line: LineAddr, now: u64, core: usize) -> WriteOutcome {
        for (i, &l) in self.write_lines.iter().enumerate() {
            if l == line.0 && self.writes.in_flight_for(self.writes.slots[i], now) {
                self.write_merges += 1;
                return WriteOutcome {
                    completion: self.writes.slots[i],
                    merged: true,
                };
            }
        }
        self.write_cmds += 1;
        let (idx, completion) = self.writes.schedule(now, core);
        self.write_lines[idx] = line.0;
        WriteOutcome {
            completion,
            merged: false,
        }
    }

    /// Time at which all outstanding writes have completed.
    pub fn writes_drained_at(&self) -> u64 {
        self.writes.drained_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemCtrl {
        MemCtrl::new(32, 64, 8, 16, 300, 600)
    }

    #[test]
    fn single_write_latency() {
        let mut mc = mc();
        let w = mc.schedule_write(LineAddr(1), 1000, 0);
        assert_eq!(w.completion, 1600);
        assert!(!w.merged);
        assert_eq!(mc.write_cmds, 1);
    }

    #[test]
    fn burst_absorbed_then_bandwidth_limits() {
        // 2-slot queue, gap 100, latency 150 -> slot hold = max(150, 200).
        let mut mc = MemCtrl::new(2, 2, 100, 100, 150, 150);
        let c1 = mc.schedule_write(LineAddr(1), 0, 0).completion;
        let c2 = mc.schedule_write(LineAddr(2), 0, 0).completion;
        // Burst of queue-depth commands starts immediately.
        assert_eq!((c1, c2), (150, 150));
        // The next command waits for a slot (hold = 200).
        let c3 = mc.schedule_write(LineAddr(3), 0, 0).completion;
        assert_eq!(c3, 350);
        // Aggregate rate is one command per gap: 2 slots / 200 hold.
        let c4 = mc.schedule_write(LineAddr(4), 0, 0).completion;
        assert_eq!(c4, 350);
        let c5 = mc.schedule_write(LineAddr(5), 0, 0).completion;
        assert_eq!(c5, 550);
    }

    #[test]
    fn queue_backpressure_delays_when_full() {
        // Queue with 2 slots, no gap, latency 100 (hold = latency).
        let mut mc = MemCtrl::new(2, 2, 0, 0, 100, 100);
        let a = mc.schedule_write(LineAddr(1), 0, 0).completion;
        let b = mc.schedule_write(LineAddr(2), 0, 0).completion;
        assert_eq!((a, b), (100, 100));
        // Both slots held until 100, so this starts at 100.
        let c = mc.schedule_write(LineAddr(3), 50, 0).completion;
        assert_eq!(c, 200);
    }

    #[test]
    fn skewed_cores_do_not_inherit_each_others_timeline() {
        // Core 0 fills the queue far in core 1's future; core 1's request
        // schedules at its own time (they cannot physically contend).
        let mut mc = MemCtrl::new(4, 4, 10, 10, 100, 100);
        for i in 0..4 {
            mc.schedule_write(LineAddr(100 + i), 1_000_000, 0);
        }
        let w = mc.schedule_write(LineAddr(2), 5, 1);
        assert_eq!(w.completion, 105, "decoupled from core 0's future");
        // But a core's own history always backpressures:
        let mut mc2 = MemCtrl::new(1, 1, 10, 10, 100, 100);
        mc2.schedule_write(LineAddr(1), 1_000_000, 0);
        let w2 = mc2.schedule_write(LineAddr(2), 5, 0);
        assert_eq!(w2.completion, 1_000_100 + 100);
    }

    #[test]
    fn in_flight_same_line_write_merges() {
        let mut mc = mc();
        let w1 = mc.schedule_write(LineAddr(7), 0, 0);
        assert!(!w1.merged);
        // Same line while the first write is still in flight: combined.
        let w2 = mc.schedule_write(LineAddr(7), 5, 0);
        assert!(w2.merged);
        assert_eq!(w2.completion, w1.completion);
        let w3 = mc.schedule_write(LineAddr(7), 100, 0);
        assert!(w3.merged);
        assert_eq!(mc.write_cmds, 1);
        assert_eq!(mc.write_merges, 2);
    }

    #[test]
    fn completed_writes_do_not_merge() {
        let mut mc = mc();
        mc.schedule_write(LineAddr(9), 0, 0);
        // Arrives long after the entry completed: fresh write.
        let w = mc.schedule_write(LineAddr(9), 10_000, 0);
        assert!(!w.merged);
        assert_eq!(mc.write_cmds, 2);
    }

    #[test]
    fn reads_and_writes_independent() {
        let mut mc = MemCtrl::new(1, 1, 0, 0, 300, 600);
        let (r, fwd) = mc.schedule_read(LineAddr(5), 0, 30, 0);
        let w = mc.schedule_write(LineAddr(1), 0, 0).completion;
        assert_eq!(r, 300);
        assert!(!fwd);
        assert_eq!(w, 600);
    }

    #[test]
    fn read_forwards_from_pending_write() {
        let mut mc = MemCtrl::new(1, 1, 0, 0, 300, 600);
        mc.schedule_write(LineAddr(9), 0, 0);
        let (r, fwd) = mc.schedule_read(LineAddr(9), 10, 30, 0);
        assert!(fwd, "line is in the write queue");
        assert_eq!(r, 40);
        assert_eq!(mc.read_forwards, 1);
        // Long after the write completed, the read goes to the media.
        let (_, fwd2) = mc.schedule_read(LineAddr(9), 10_000, 30, 0);
        assert!(!fwd2);
    }

    #[test]
    fn drain_time_tracks_latest_write() {
        let mut mc = MemCtrl::new(4, 4, 0, 10, 100, 100);
        assert_eq!(mc.writes_drained_at(), 0);
        mc.schedule_write(LineAddr(1), 0, 0);
        mc.schedule_write(LineAddr(2), 30, 0);
        assert_eq!(mc.writes_drained_at(), 130);
    }
}

//! # lp-sim — a deterministic NVMM cache-hierarchy timing simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Lazy Persistency: A High-Performing and Write-Efficient Software
//! Persistency Technique"* (Alshboul, Tuck, Solihin — ISCA 2018). The paper
//! evaluates on gem5; this crate provides the equivalent mechanisms in a
//! deterministic, trace-driven timing model:
//!
//! * per-core private L1 data caches and a shared, inclusive L2 with a
//!   MESI-style directory ([`cache`], [`memsys`]);
//! * a memory controller with bounded read/write queues whose write queue
//!   is in the ADR non-volatile domain ([`mc`]);
//! * byte-addressable NVMM with configurable read/write latencies and a
//!   durable image that is exactly what survives a crash ([`mem`]);
//! * the persistency instructions the paper's Eager baselines need —
//!   `clflushopt`, `clwb`, `sfence` — plus timed loads/stores and a compute
//!   model with structural-hazard counters ([`core`]);
//! * crash injection, recovery-mode execution, statistics, and the
//!   paper's proposed periodic hardware cleaner ([`machine`], [`stats`],
//!   [`cleaner`]).
//!
//! # Quick example
//!
//! ```
//! use lp_sim::prelude::*;
//!
//! // A 2-core machine with Table II defaults and a 1 MiB NVMM image.
//! let mut m = Machine::new(MachineConfig::default().with_cores(2).with_nvmm_bytes(1 << 20));
//! let data = m.alloc::<f64>(1024).unwrap();
//!
//! // Two logical threads each fill half the array.
//! let mut plans = m.plans();
//! for (t, plan) in plans.iter_mut().enumerate() {
//!     plan.region(move |ctx| {
//!         for i in (t * 512)..((t + 1) * 512) {
//!             ctx.store(data, i, i as f64);
//!             ctx.compute(2);
//!         }
//!     });
//! }
//! assert_eq!(m.run(plans), Outcome::Completed);
//!
//! // Dirty lines reach NVMM through natural evictions; drain the rest and
//! // inspect the durable image.
//! m.drain_caches();
//! assert_eq!(m.peek(data, 1000), 1000.0);
//! println!("{}", m.stats().summary());
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod cache;
pub mod cleaner;
pub mod config;
pub mod core;
pub mod debug;
pub mod fault;
pub mod machine;
pub mod mc;
pub mod mem;
pub mod memsys;
pub mod observe;
pub mod par;
pub mod rng;
pub mod stats;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::addr::{Addr, LineAddr, LINE_BYTES};
    pub use crate::cleaner::CleanerConfig;
    pub use crate::config::MachineConfig;
    pub use crate::core::CoreCtx;
    pub use crate::fault::FaultConfig;
    pub use crate::machine::{Machine, Outcome, ThreadPlan, WorkItem};
    pub use crate::mem::{PArray, Scalar};
    pub use crate::memsys::CrashTrigger;
    pub use crate::observe::{
        EventSink, MemEvent, RegionCounts, RegionId, RegionTally, SharedSink,
    };
    pub use crate::stats::{SimStats, WriteCause};
}

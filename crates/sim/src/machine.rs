//! The simulated machine: cores + memory system + persistent heap, with a
//! deterministic logical-core scheduler, crash orchestration, and untimed
//! setup/inspection access to the durable image.
//!
//! # Scheduling model
//!
//! Worker threads are *logical cores*. A workload hands the machine one
//! [`ThreadPlan`] per core: a queue of region-granular work items (closures
//! that issue timed operations through [`CoreCtx`]) optionally separated by
//! [`WorkItem::Barrier`]s. The scheduler interleaves plans round-robin, one
//! region per turn, so runs are fully deterministic. Each core keeps its own
//! cycle clock; execution time is the max across cores. The evaluated
//! kernels are data-parallel with disjoint write sets, so region-granular
//! interleaving preserves cache and coherence behaviour (see DESIGN.md).

use crate::config::MachineConfig;
use crate::core::{CoreCtx, CoreState};
use crate::mem::{OutOfPersistentMemory, PArray, PersistentHeap, Scalar};
use crate::memsys::{CrashTrigger, MemSystem};
use crate::stats::{SimStats, WriteCause};

/// A unit of scheduled work: one region closure or a barrier.
///
/// Region closures are `Send` so a whole prepared plan set (and the
/// machine it targets) can be handed to a worker thread by the parallel
/// exploration engine.
pub enum WorkItem<'w> {
    /// A region of computation executed on one core without interleaving.
    Region(Box<dyn FnOnce(&mut CoreCtx<'_>) + Send + 'w>),
    /// Wait until every unfinished core reaches its barrier, then align
    /// all their clocks to the maximum (models a synchronization barrier).
    Barrier,
}

impl std::fmt::Debug for WorkItem<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkItem::Region(_) => f.write_str("Region(..)"),
            WorkItem::Barrier => f.write_str("Barrier"),
        }
    }
}

/// The queue of work for one logical core.
#[derive(Debug, Default)]
pub struct ThreadPlan<'w> {
    items: std::collections::VecDeque<WorkItem<'w>>,
}

impl<'w> ThreadPlan<'w> {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a region closure.
    pub fn region(&mut self, f: impl FnOnce(&mut CoreCtx<'_>) + Send + 'w) -> &mut Self {
        self.items.push_back(WorkItem::Region(Box::new(f)));
        self
    }

    /// Append a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.items.push_back(WorkItem::Barrier);
        self
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// How a scheduled run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All plans ran to completion.
    Completed,
    /// The crash trigger fired (or a forced crash occurred); cache state
    /// has been discarded and the machine is powered back on for recovery.
    Crashed,
}

/// A full simulated machine.
///
/// # Examples
///
/// ```
/// use lp_sim::machine::{Machine, ThreadPlan, Outcome};
/// use lp_sim::config::MachineConfig;
///
/// let mut m = Machine::new(MachineConfig::default().with_cores(2).with_nvmm_bytes(1 << 20));
/// let arr = m.alloc::<f64>(64).unwrap();
/// let mut plans = m.plans();
/// plans[0].region(move |ctx| {
///     for i in 0..32 {
///         ctx.store(arr, i, i as f64);
///     }
/// });
/// plans[1].region(move |ctx| {
///     for i in 32..64 {
///         ctx.store(arr, i, i as f64);
///     }
/// });
/// assert_eq!(m.run(plans), Outcome::Completed);
/// m.drain_caches();
/// assert_eq!(m.peek(arr, 40), 40.0);
/// ```
#[derive(Debug)]
pub struct Machine {
    mem: MemSystem,
    cores: Vec<CoreState>,
    heap: PersistentHeap,
    regions_run: u64,
}

impl Machine {
    /// Build a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MachineConfig) -> Self {
        let cores = (0..cfg.cores).map(|i| CoreState::new(i, &cfg)).collect();
        let heap = PersistentHeap::new(cfg.nvmm_bytes as u64);
        let mem = MemSystem::new(cfg);
        Machine {
            mem,
            cores,
            heap,
            regions_run: 0,
        }
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.mem.cfg
    }

    /// Number of logical cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Allocate a persistent array (line-aligned, zero-initialized in the
    /// durable image).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfPersistentMemory`] if the heap is exhausted.
    pub fn alloc<T: Scalar>(&mut self, len: usize) -> Result<PArray<T>, OutOfPersistentMemory> {
        self.heap.alloc::<T>(len)
    }

    /// Bytes of persistent heap used so far.
    pub fn heap_used(&self) -> u64 {
        self.heap.used()
    }

    /// Immutable access to the memory system (stats, durable image).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Mutable access to the memory system (crash triggers, forced crash).
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Untimed durable-image write for setup. Invalidates any cached copy
    /// of the affected line so it cannot be shadowed by stale data.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn poke<T: Scalar>(&mut self, arr: PArray<T>, i: usize, v: T) {
        let addr = arr.addr(i);
        self.mem.invalidate_everywhere(addr.line());
        let bits = v.to_bits64().to_le_bytes();
        self.mem.nvmm_mut().poke_bytes(addr, &bits[..T::SIZE]);
    }

    /// Untimed bulk setup write starting at element `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn poke_slice<T: Scalar>(&mut self, arr: PArray<T>, start: usize, values: &[T]) {
        for (k, &v) in values.iter().enumerate() {
            self.poke(arr, start + k, v);
        }
    }

    /// Untimed read of the *durable image* (what survives a crash).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn peek<T: Scalar>(&self, arr: PArray<T>, i: usize) -> T {
        let addr = arr.addr(i);
        let mut bits = [0u8; 8];
        self.mem.nvmm().peek_bytes(addr, &mut bits[..T::SIZE]);
        T::from_bits64(u64::from_le_bytes(bits))
    }

    /// Untimed read of the whole array from the durable image.
    pub fn peek_vec<T: Scalar>(&self, arr: PArray<T>) -> Vec<T> {
        (0..arr.len()).map(|i| self.peek(arr, i)).collect()
    }

    /// Untimed read of the *coherent* view (freshest cached copy if any).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn peek_coherent<T: Scalar>(&self, arr: PArray<T>, i: usize) -> T {
        let addr = arr.addr(i);
        let mut buf = [0u8; crate::addr::LINE_BYTES];
        self.mem.read_coherent(addr.line(), &mut buf);
        let off = addr.line_offset();
        let mut bits = [0u8; 8];
        bits[..T::SIZE].copy_from_slice(&buf[off..off + T::SIZE]);
        T::from_bits64(u64::from_le_bytes(bits))
    }

    /// A direct operation context on core `id` (for recovery code,
    /// examples, and tests that do not need the scheduler).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ctx(&mut self, id: usize) -> CoreCtx<'_> {
        CoreCtx::new(&mut self.cores[id], &mut self.mem)
    }

    /// Fresh empty plans, one per core, for [`Machine::run`].
    pub fn plans(&self) -> Vec<ThreadPlan<'static>> {
        (0..self.cores.len()).map(|_| ThreadPlan::new()).collect()
    }

    /// Execute the plans to completion or crash.
    ///
    /// Regions are interleaved round-robin across cores, one region per
    /// turn. On a crash the remaining work is abandoned, all cache state
    /// is discarded (dirty lines are lost), and the machine is powered
    /// back on so the caller can run recovery.
    ///
    /// # Panics
    ///
    /// Panics if more plans than cores are supplied.
    pub fn run(&mut self, plans: Vec<ThreadPlan<'_>>) -> Outcome {
        assert!(
            plans.len() <= self.cores.len(),
            "more plans ({}) than cores ({})",
            plans.len(),
            self.cores.len()
        );
        let mut queues: Vec<_> = plans.into_iter().map(|p| p.items).collect();
        loop {
            if self.mem.crashed() {
                self.mem.acknowledge_crash();
                return Outcome::Crashed;
            }
            let mut any_progress = false;
            let mut all_blocked_or_done = true;
            for (i, q) in queues.iter_mut().enumerate() {
                match q.front() {
                    None => {}
                    Some(WorkItem::Barrier) => {}
                    Some(WorkItem::Region(_)) => {
                        all_blocked_or_done = false;
                        let Some(WorkItem::Region(f)) = q.pop_front() else {
                            unreachable!()
                        };
                        let mut ctx = CoreCtx::new(&mut self.cores[i], &mut self.mem);
                        f(&mut ctx);
                        self.regions_run += 1;
                        any_progress = true;
                        if self.mem.crashed() {
                            break;
                        }
                    }
                }
            }
            if self.mem.crashed() {
                self.mem.acknowledge_crash();
                return Outcome::Crashed;
            }
            if all_blocked_or_done {
                // Either everything is done, or unfinished cores are all at
                // barriers: release them together.
                let waiting: Vec<usize> = queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| matches!(q.front(), Some(WorkItem::Barrier)))
                    .map(|(i, _)| i)
                    .collect();
                if waiting.is_empty() {
                    debug_assert!(queues.iter().all(std::collections::VecDeque::is_empty));
                    return Outcome::Completed;
                }
                let sync = waiting
                    .iter()
                    .map(|&i| self.cores[i].cycles)
                    .max()
                    .unwrap_or(0);
                self.mem.observe_barrier(sync);
                for &i in &waiting {
                    self.cores[i].cycles = sync;
                    queues[i].pop_front();
                }
                any_progress = true;
            }
            debug_assert!(any_progress, "scheduler made no progress");
        }
    }

    /// Total regions executed across all runs.
    pub fn regions_run(&self) -> u64 {
        self.regions_run
    }

    /// Write back every dirty line (cause: [`WriteCause::Drain`]) without
    /// evicting. Call before [`Machine::peek`]-based verification of a
    /// completed (non-crashed) run.
    pub fn drain_caches(&mut self) -> u64 {
        let t = self.mem.global_time();
        self.mem.writeback_all_dirty(t, WriteCause::Drain)
    }

    /// Install an event observer (see [`crate::observe`]). The observer
    /// receives every memory event of subsequent runs; the timing and
    /// functional behaviour of the machine is unaffected.
    pub fn set_observer(&mut self, sink: crate::observe::SharedSink) {
        self.mem.set_observer(sink);
    }

    /// Remove any installed observer, restoring the zero-overhead default.
    pub fn clear_observer(&mut self) {
        self.mem.clear_observer();
    }

    /// Enable or disable ADR crash-state tracking (see
    /// [`MemSystem::set_adr_tracking`]). While enabled, a crash captures a
    /// [`crate::memsys::CrashCensus`] retrievable with
    /// [`Machine::take_crash_census`].
    pub fn set_adr_tracking(&mut self, on: bool) {
        self.mem.set_adr_tracking(on);
    }

    /// Take the census of maybe-durable lines captured by the most recent
    /// crash (requires ADR tracking to have been enabled when it fired).
    pub fn take_crash_census(&mut self) -> Option<crate::memsys::CrashCensus> {
        self.mem.take_crash_census()
    }

    /// Arm non-destructive census snapshots at the given op indices (see
    /// [`MemSystem::set_snapshot_points`]); requires ADR tracking.
    ///
    /// # Panics
    ///
    /// Panics unless ADR tracking is enabled.
    pub fn set_snapshot_points(&mut self, points: &[u64]) {
        self.mem.set_snapshot_points(points);
    }

    /// Take the `(op, census)` snapshots collected by the armed points, in
    /// op order (see [`MemSystem::take_snapshots`]).
    pub fn take_snapshots(&mut self) -> Vec<(u64, crate::memsys::CrashCensus)> {
        self.mem.take_snapshots()
    }

    /// Enable or disable crash-point candidate recording (see
    /// [`MemSystem::set_candidate_tracking`]). Purely observational.
    pub fn set_candidate_tracking(&mut self, on: bool) {
        self.mem.set_candidate_tracking(on);
    }

    /// Take the recorded crash-point candidate op indices, ascending and
    /// deduplicated (see [`MemSystem::take_crash_candidates`]).
    pub fn take_crash_candidates(&mut self) -> Vec<u64> {
        self.mem.take_crash_candidates()
    }

    /// A copy-on-write fork of the current durable image.
    pub fn nvmm_fork(&self) -> crate::mem::Nvmm {
        self.mem.nvmm().fork()
    }

    /// Build a fresh machine (cold caches, zeroed core clocks) over the
    /// same configuration and heap layout, with `image` installed as its
    /// durable state. This is how a crash-state explorer materializes one
    /// candidate post-crash world and runs real recovery on it.
    ///
    /// # Panics
    ///
    /// Panics if `image` does not match the configured NVMM capacity.
    pub fn fork_with_image(&self, image: crate::mem::Nvmm) -> Machine {
        let cfg = self.cfg().clone();
        let cores = (0..cfg.cores).map(|i| CoreState::new(i, &cfg)).collect();
        let heap = self.heap.clone();
        let mut mem = MemSystem::new(cfg);
        mem.install_nvmm(image);
        Machine {
            mem,
            cores,
            heap,
            regions_run: 0,
        }
    }

    /// Arm the crash trigger for the next run.
    pub fn set_crash_trigger(&mut self, trigger: CrashTrigger) {
        self.mem.set_crash_trigger(Some(trigger));
    }

    /// Disarm the crash trigger.
    pub fn clear_crash_trigger(&mut self) {
        self.mem.set_crash_trigger(None);
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> SimStats {
        SimStats {
            cores: self
                .cores
                .iter()
                .map(|c| {
                    let mut s = c.stats.clone();
                    s.cycles = c.cycles;
                    s
                })
                .collect(),
            mem: self.mem.stats.clone(),
        }
    }

    /// Take the statistics and reset all counters and core clocks (e.g. to
    /// measure recovery separately from the crashed run).
    pub fn take_stats(&mut self) -> SimStats {
        let out = self.stats();
        for c in &mut self.cores {
            c.reset();
        }
        self.mem.stats = Default::default();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memsys::CrashTrigger;

    fn machine(cores: usize) -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(cores)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn parallel_plans_complete_and_write() {
        let mut m = machine(4);
        let arr = m.alloc::<u64>(256).unwrap();
        let mut plans = m.plans();
        for (t, plan) in plans.iter_mut().enumerate() {
            plan.region(move |ctx| {
                for i in (t * 64)..((t + 1) * 64) {
                    ctx.store(arr, i, i as u64 + 1);
                }
            });
        }
        assert_eq!(m.run(plans), Outcome::Completed);
        m.drain_caches();
        for i in 0..256 {
            assert_eq!(m.peek(arr, i), i as u64 + 1);
        }
        assert_eq!(m.regions_run(), 4);
    }

    #[test]
    fn exec_time_is_max_core_cycles() {
        let mut m = machine(2);
        let arr = m.alloc::<u64>(128).unwrap();
        let mut plans = m.plans();
        plans[0].region(move |ctx| ctx.store(arr, 0, 1));
        plans[1].region(move |ctx| {
            for i in 64..128 {
                ctx.store(arr, i, 2);
            }
        });
        m.run(plans);
        let stats = m.stats();
        assert_eq!(
            stats.exec_cycles(),
            stats.cores.iter().map(|c| c.cycles).max().unwrap()
        );
        assert!(stats.cores[1].cycles > stats.cores[0].cycles);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut m = machine(2);
        let arr = m.alloc::<u64>(128).unwrap();
        let mut plans = m.plans();
        // Core 0 does lots of work; core 1 almost none. After the barrier
        // both run one more region starting from the same time.
        plans[0].region(move |ctx| {
            for i in 0..64 {
                ctx.store(arr, i, 1);
            }
        });
        plans[0].barrier();
        plans[0].region(move |ctx| ctx.compute(4));
        plans[1].region(move |ctx| ctx.compute(4));
        plans[1].barrier();
        plans[1].region(move |ctx| ctx.compute(4));
        assert_eq!(m.run(plans), Outcome::Completed);
        let s = m.stats();
        assert_eq!(s.cores[0].cycles, s.cores[1].cycles);
    }

    #[test]
    fn crash_stops_run_and_discards_cache_state() {
        let mut m = machine(1);
        let arr = m.alloc::<u64>(64).unwrap();
        m.set_crash_trigger(CrashTrigger::AfterMemOps(10));
        let mut plans = m.plans();
        plans[0].region(move |ctx| {
            for i in 0..64 {
                ctx.store(arr, i, 7);
            }
        });
        assert_eq!(m.run(plans), Outcome::Crashed);
        // Nothing was evicted before the crash, so nothing survives.
        for i in 0..64 {
            assert_eq!(m.peek(arr, i), 0, "element {i} must not be durable");
        }
        // Machine is usable again after the crash.
        assert!(!m.mem().crashed());
        let mut plans = m.plans();
        plans[0].region(move |ctx| ctx.store(arr, 0, 9));
        m.clear_crash_trigger();
        assert_eq!(m.run(plans), Outcome::Completed);
        m.drain_caches();
        assert_eq!(m.peek(arr, 0), 9);
    }

    #[test]
    fn poke_is_visible_to_timed_loads() {
        let mut m = machine(1);
        let arr = m.alloc::<f64>(8).unwrap();
        // Load first so the line is cached, then poke: the stale cached
        // copy must be dropped.
        let _: f64 = m.ctx(0).load(arr, 0);
        m.poke(arr, 0, 3.25);
        let v: f64 = m.ctx(0).load(arr, 0);
        assert_eq!(v, 3.25);
    }

    #[test]
    fn peek_coherent_sees_cached_stores() {
        let mut m = machine(1);
        let arr = m.alloc::<u64>(8).unwrap();
        m.ctx(0).store(arr, 2, 11);
        assert_eq!(m.peek(arr, 2), 0, "durable image not yet updated");
        assert_eq!(m.peek_coherent(arr, 2), 11);
    }

    #[test]
    fn take_stats_resets() {
        let mut m = machine(1);
        let arr = m.alloc::<u64>(8).unwrap();
        m.ctx(0).store(arr, 0, 1);
        let s1 = m.take_stats();
        assert_eq!(s1.core_totals().stores, 1);
        let s2 = m.stats();
        assert_eq!(s2.core_totals().stores, 0);
        assert_eq!(s2.exec_cycles(), 0);
    }

    #[test]
    fn machine_and_plans_are_send() {
        // Compile-time contract for the parallel exploration engine: a
        // complete simulation case (machine + plans) can cross threads.
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
        assert_send::<ThreadPlan<'static>>();
        assert_send::<crate::mem::Nvmm>();
        assert_send::<crate::memsys::MemSystem>();
    }

    #[test]
    #[should_panic(expected = "more plans")]
    fn too_many_plans_rejected() {
        let mut m = machine(1);
        let mut plans = vec![ThreadPlan::new(), ThreadPlan::new()];
        plans[0].region(|_| {});
        plans[1].region(|_| {});
        m.run(plans);
    }
}

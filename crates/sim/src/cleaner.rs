//! Periodic hardware cache cleaner (Section III-E1 and VI-A of the paper).
//!
//! Lazy Persistency's recovery time is bounded by how long dirty data can
//! linger in the hierarchy. The paper proposes simple hardware that
//! periodically writes back (without evicting) every dirty block, spacing
//! the writebacks out in time and across sets like DRAM refresh so the
//! performance impact is negligible. We model the write traffic exactly
//! (every cleaned line counts as an NVMM write) and treat the timing impact
//! as zero, matching the paper's evaluation which reports only the write
//! overhead (Figure 11).

/// Configuration of the periodic cleaner.
///
/// # Examples
///
/// ```
/// use lp_sim::cleaner::CleanerConfig;
/// use lp_sim::config::MachineConfig;
/// let cfg = MachineConfig::default()
///     .with_cleaner(CleanerConfig::every_cycles(2_000_000));
/// assert!(cfg.cleaner.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanerConfig {
    /// Cycles between full-cache cleaning sweeps ("time between flushes" on
    /// the x-axis of Figure 11).
    pub interval_cycles: u64,
}

impl CleanerConfig {
    /// A cleaner that sweeps every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn every_cycles(interval: u64) -> Self {
        assert!(interval > 0, "cleaner interval must be non-zero");
        CleanerConfig {
            interval_cycles: interval,
        }
    }
}

/// Runtime state of the cleaner: when the next sweep is due.
#[derive(Debug, Clone)]
pub struct CleanerState {
    cfg: CleanerConfig,
    next_due: u64,
    /// Number of sweeps performed.
    pub sweeps: u64,
}

impl CleanerState {
    /// Initialize from a configuration; the first sweep is due one full
    /// interval into the run.
    pub fn new(cfg: CleanerConfig) -> Self {
        CleanerState {
            cfg,
            next_due: cfg.interval_cycles,
            sweeps: 0,
        }
    }

    /// Whether a sweep is due at `now`. If so, advances the deadline past
    /// `now` (catching up if the machine jumped several intervals) and
    /// returns `true`; the caller performs the actual writebacks.
    pub fn due(&mut self, now: u64) -> bool {
        if now < self.next_due {
            return false;
        }
        while self.next_due <= now {
            self.next_due += self.cfg.interval_cycles;
        }
        self.sweeps += 1;
        true
    }

    /// The configured interval.
    pub fn interval(&self) -> u64 {
        self.cfg.interval_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_due_before_interval() {
        let mut s = CleanerState::new(CleanerConfig::every_cycles(100));
        assert!(!s.due(0));
        assert!(!s.due(99));
        assert!(s.due(100));
        assert_eq!(s.sweeps, 1);
    }

    #[test]
    fn catches_up_after_long_jump() {
        let mut s = CleanerState::new(CleanerConfig::every_cycles(100));
        assert!(s.due(1000));
        // Deadline advanced past 1000, so immediately after it is not due.
        assert!(!s.due(1000));
        assert!(s.due(1100));
        assert_eq!(s.sweeps, 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_rejected() {
        let _ = CleanerConfig::every_cycles(0);
    }
}

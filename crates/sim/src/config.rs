//! Machine configuration: core count, cache geometry, latencies, queue sizes.
//!
//! Defaults reproduce Table II of the paper: out-of-order 2 GHz cores,
//! 4-wide issue, 64 KB 8-way L1s, a 512 KB 8-way shared L2, an ADR memory
//! controller with 32-entry read / 64-entry write queues, and NVMM with
//! 150 ns read / 300 ns write latency.

use crate::cleaner::CleanerConfig;

/// Full configuration of a simulated machine.
///
/// Construct with [`MachineConfig::default`] (Table II values) and adjust
/// fields via the `with_*` builder methods.
///
/// # Examples
///
/// ```
/// use lp_sim::config::MachineConfig;
/// let cfg = MachineConfig::default()
///     .with_cores(4)
///     .with_l2_bytes(1024 * 1024)
///     .with_nvmm_latency_ns(60, 150);
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(cfg.nvmm_read_cycles(), 120); // 60 ns at 2 GHz
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of simulated cores (worker threads). Paper default: 8 workers
    /// (plus one master that performs no kernel work, which we omit).
    pub cores: usize,
    /// Core clock in GHz. Latencies in nanoseconds are converted to cycles
    /// with this frequency.
    pub freq_ghz: f64,
    /// Issue/retire width of each core (instructions per cycle for the
    /// compute model).
    pub issue_width: u64,
    /// Reorder-buffer capacity; used as the backlog threshold in the
    /// structural-hazard model.
    pub rob_entries: usize,
    /// Load-queue capacity.
    pub load_queue: usize,
    /// Store-queue capacity (stores and cache-line flushes occupy entries
    /// until their writeback completes).
    pub store_queue: usize,
    /// Per-core miss-status-holding registers (outstanding L1 misses).
    pub mshrs: usize,
    /// Modelled memory-level parallelism: an out-of-order core overlaps
    /// this many outstanding load misses, so a load miss charges only
    /// `1/mlp` of its NVMM residency to the issuing core. Store and flush
    /// *completions* (what `sfence` waits for) are never scaled.
    pub mlp: u64,

    /// Per-core L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,

    /// Shared L2 size in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,

    /// Memory-controller read queue entries.
    pub mc_read_queue: usize,
    /// Memory-controller write queue entries (in the ADR non-volatile
    /// domain: a write accepted into this queue is durable).
    pub mc_write_queue: usize,
    /// Minimum cycles between successive NVMM read commands (bandwidth).
    pub mc_read_gap: u64,
    /// Minimum cycles between successive NVMM write commands (bandwidth).
    pub mc_write_gap: u64,
    /// Latency of a read serviced by forwarding from a pending entry in
    /// the memory controller's write queue (no media access).
    pub mc_forward_latency: u64,

    /// NVMM read latency in nanoseconds (Table II default: 150 ns).
    pub nvmm_read_ns: u64,
    /// NVMM write latency in nanoseconds (Table II default: 300 ns).
    pub nvmm_write_ns: u64,

    /// Size of the simulated NVMM image in bytes.
    pub nvmm_bytes: usize,

    /// Optional periodic hardware cache cleaner (Section III-E1 / VI-A).
    pub cleaner: Option<CleanerConfig>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 8,
            freq_ghz: 2.0,
            issue_width: 4,
            rob_entries: 196,
            load_queue: 48,
            store_queue: 48,
            mshrs: 16,
            mlp: 4,
            l1_bytes: 64 * 1024,
            l1_assoc: 8,
            l1_latency: 2,
            l2_bytes: 512 * 1024,
            l2_assoc: 8,
            l2_latency: 11,
            mc_read_queue: 32,
            mc_write_queue: 64,
            mc_read_gap: 8,
            mc_write_gap: 64,
            mc_forward_latency: 12,
            nvmm_read_ns: 150,
            nvmm_write_ns: 300,
            nvmm_bytes: 256 * 1024 * 1024,
            cleaner: None,
        }
    }
}

impl MachineConfig {
    /// Set the number of cores.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!((1..=64).contains(&cores), "cores must be in 1..=64");
        self.cores = cores;
        self
    }

    /// Set the shared L2 capacity in bytes.
    pub fn with_l2_bytes(mut self, bytes: usize) -> Self {
        self.l2_bytes = bytes;
        self
    }

    /// Set per-core L1 capacity in bytes.
    pub fn with_l1_bytes(mut self, bytes: usize) -> Self {
        self.l1_bytes = bytes;
        self
    }

    /// Set NVMM read and write latencies in nanoseconds. The write-queue
    /// forward latency scales with the read latency (the controller's
    /// front end is part of the media round trip).
    pub fn with_nvmm_latency_ns(mut self, read_ns: u64, write_ns: u64) -> Self {
        self.nvmm_read_ns = read_ns;
        self.nvmm_write_ns = write_ns;
        self.mc_forward_latency = (self.nvmm_read_cycles() / 25).max(6);
        self
    }

    /// Set the NVMM image capacity in bytes.
    pub fn with_nvmm_bytes(mut self, bytes: usize) -> Self {
        self.nvmm_bytes = bytes;
        self
    }

    /// Enable the periodic hardware cache cleaner.
    pub fn with_cleaner(mut self, cleaner: CleanerConfig) -> Self {
        self.cleaner = Some(cleaner);
        self
    }

    /// Convert nanoseconds to core cycles at the configured frequency.
    #[inline]
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.freq_ghz).round() as u64
    }

    /// NVMM read latency in cycles.
    #[inline]
    pub fn nvmm_read_cycles(&self) -> u64 {
        self.ns_to_cycles(self.nvmm_read_ns)
    }

    /// NVMM write latency in cycles.
    #[inline]
    pub fn nvmm_write_cycles(&self) -> u64 {
        self.ns_to_cycles(self.nvmm_write_ns)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (cache
    /// geometry must be power-of-two sets, at least one core, non-zero
    /// queues).
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be >= 1".into());
        }
        for (name, bytes, assoc) in [
            ("L1", self.l1_bytes, self.l1_assoc),
            ("L2", self.l2_bytes, self.l2_assoc),
        ] {
            if assoc == 0 {
                return Err(format!("{name} associativity must be >= 1"));
            }
            let line = crate::addr::LINE_BYTES;
            if bytes % (assoc * line) != 0 {
                return Err(format!("{name} size must be a multiple of assoc * 64"));
            }
            let sets = bytes / (assoc * line);
            if !sets.is_power_of_two() {
                return Err(format!("{name} set count {sets} must be a power of two"));
            }
        }
        if self.load_queue == 0 || self.store_queue == 0 || self.mshrs == 0 {
            return Err("queues and MSHRs must be non-zero".into());
        }
        if self.mc_read_queue == 0 || self.mc_write_queue == 0 {
            return Err("memory controller queues must be non-zero".into());
        }
        if self.issue_width == 0 {
            return Err("issue width must be >= 1".into());
        }
        if self.mlp == 0 {
            return Err("mlp must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = MachineConfig::default();
        assert_eq!(c.l1_bytes, 64 * 1024);
        assert_eq!(c.l2_bytes, 512 * 1024);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 11);
        assert_eq!(c.nvmm_read_ns, 150);
        assert_eq!(c.nvmm_write_ns, 300);
        assert_eq!(c.rob_entries, 196);
        assert_eq!(c.load_queue, 48);
        assert_eq!(c.store_queue, 48);
        assert_eq!(c.mc_read_queue, 32);
        assert_eq!(c.mc_write_queue, 64);
        c.validate().unwrap();
    }

    #[test]
    fn ns_conversion_at_2ghz() {
        let c = MachineConfig::default();
        assert_eq!(c.nvmm_read_cycles(), 300);
        assert_eq!(c.nvmm_write_cycles(), 600);
        assert_eq!(c.ns_to_cycles(1), 2);
    }

    #[test]
    fn builder_chain() {
        let c = MachineConfig::default()
            .with_cores(16)
            .with_l1_bytes(32 * 1024)
            .with_l2_bytes(1024 * 1024)
            .with_nvmm_latency_ns(100, 200)
            .with_nvmm_bytes(64 * 1024 * 1024);
        assert_eq!(c.cores, 16);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 1024 * 1024);
        assert_eq!(c.nvmm_read_cycles(), 200);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        // 100 bytes: not a multiple of assoc*line.
        let c = MachineConfig {
            l2_bytes: 100,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());

        // 3 sets: not a power of two.
        let c = MachineConfig {
            l2_bytes: 3 * 8 * 64,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());

        let c = MachineConfig {
            mshrs: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "cores must be in 1..=64")]
    fn with_cores_rejects_zero() {
        let _ = MachineConfig::default().with_cores(0);
    }
}

//! The shared memory system: L1s + inclusive L2 with MESI directory, the
//! ADR memory controller, the NVMM image, crash modelling, and the
//! periodic cleaner.
//!
//! All coherence and timing decisions live here. Cores call
//! [`MemSystem::ensure_in_l1`] / [`MemSystem::flush_line`] through
//! [`crate::core::CoreCtx`]; the scheduler in [`crate::machine`] serializes
//! logical cores so no internal locking is needed and runs are fully
//! deterministic.

use crate::addr::{Addr, LineAddr, LINE_BYTES};
use crate::cache::{L1Cache, L2Cache, Mesi};
use crate::cleaner::CleanerState;
use crate::config::MachineConfig;
use crate::mc::MemCtrl;
use crate::mem::Nvmm;
use crate::observe::{MemEvent, ObserverSlot, RegionId, SharedSink};
use crate::stats::{MemStats, WriteCause};

/// When the simulated machine should lose power.
///
/// Triggers fire while the workload runs; once fired, every subsequent
/// memory operation becomes a no-op (the machine is "off") until the
/// harness acknowledges the crash and starts recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Crash after this many memory operations (loads + stores + flushes).
    AfterMemOps(u64),
    /// Crash once the total NVMM write count reaches this value.
    AfterNvmmWrites(u64),
    /// Crash once any core's clock passes this cycle.
    AtCycle(u64),
}

/// A flush-issued NVMM write whose durability is not yet guaranteed.
///
/// The simulator applies `clflushopt`/`clwb` writebacks to the NVMM image
/// at issue time, but under ADR a flush is only *guaranteed* durable once a
/// subsequent `sfence` retires it (or the line is definitely written back
/// for another reason). Until then a crash may or may not have persisted
/// it, so the crash-state model must treat it as a maybe-durable delta:
/// `pre` is the NVMM content the write replaced, `data` what it wrote.
#[derive(Debug, Clone)]
struct PendingFlush {
    line: LineAddr,
    pre: [u8; LINE_BYTES],
    data: [u8; LINE_BYTES],
    core: usize,
}

/// Where the freshest maybe-durable copy of a census line lived at crash
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensusOrigin {
    /// An un-fenced flush writeback issued by this core.
    PendingFlush {
        /// The issuing core.
        core: usize,
    },
    /// A dirty line whose freshest copy was in this core's L1 (Modified).
    DirtyL1 {
        /// The owning core.
        core: usize,
    },
    /// A dirty line whose freshest copy was in the shared L2.
    DirtyL2,
}

/// One line whose post-crash durability is undetermined under ADR: it may
/// or may not have reached NVMM before power was lost.
#[derive(Debug, Clone)]
pub struct CensusEntry {
    /// The affected line.
    pub line: LineAddr,
    /// The data the line holds if this entry "made it".
    pub data: [u8; LINE_BYTES],
    /// Why the line's durability is undetermined.
    pub origin: CensusOrigin,
}

/// The set of NVMM states reachable from a crash, captured by
/// [`MemSystem::acknowledge_crash`] when ADR tracking is enabled.
///
/// Every reachable post-crash image is `base` plus some subset of
/// `entries` applied *in vector order* (entries are ranked oldest-first,
/// so a later entry for the same line supersedes an earlier one). The
/// empty subset is the pessimal image (nothing volatile made it); the full
/// subset equals the crash-free coherent view of those lines.
#[derive(Debug, Clone)]
pub struct CrashCensus {
    /// The guaranteed-durable floor: the NVMM image with every un-fenced
    /// flush write reverted to its pre-image.
    pub base: Nvmm,
    /// Maybe-durable line writes, oldest first.
    pub entries: Vec<CensusEntry>,
}

impl CrashCensus {
    /// Materialize one reachable image: `base` plus the entries selected
    /// by `mask` (bit `i` selects `entries[i]`), applied in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `mask` selects an entry index `>= 64` that does not exist
    /// (masks wider than the entry count are rejected).
    pub fn materialize(&self, mask: u64) -> Nvmm {
        assert!(
            self.entries.len() >= 64 || mask < (1u64 << self.entries.len().max(1)) || mask == 0,
            "mask selects nonexistent census entries"
        );
        let mut img = self.base.fork();
        for (i, e) in self.entries.iter().enumerate() {
            if i < 64 && mask & (1u64 << i) != 0 {
                img.write_line(e.line, &e.data);
            }
        }
        img
    }

    /// Materialize one reachable image from an explicit subset selection
    /// (`selected[i]` applies `entries[i]`). Unlike [`Self::materialize`]
    /// this has no 64-entry width limit, so crash points with large dirty
    /// censuses can still be sampled.
    ///
    /// # Panics
    ///
    /// Panics if `selected.len()` differs from the entry count.
    pub fn materialize_subset(&self, selected: &[bool]) -> Nvmm {
        assert_eq!(
            selected.len(),
            self.entries.len(),
            "subset selection width must match the census"
        );
        let mut img = self.base.fork();
        for (e, _) in self.entries.iter().zip(selected).filter(|&(_, s)| *s) {
            img.write_line(e.line, &e.data);
        }
        img
    }

    /// Materialize one reachable image where each selected entry persists
    /// *torn*: only the 8-byte words of `masks[i]` land (see
    /// [`Nvmm::write_words`]). ADR guarantees word-granular atomicity, not
    /// line-granular, so at crash time any word subset of an in-flight
    /// writeback is reachable. With every mask `0xFF` this is exactly
    /// [`Self::materialize_subset`].
    ///
    /// # Panics
    ///
    /// Panics if `selected` or `masks` differ in width from the census.
    pub fn materialize_subset_torn(&self, selected: &[bool], masks: &[u8]) -> Nvmm {
        assert_eq!(
            selected.len(),
            self.entries.len(),
            "subset selection width must match the census"
        );
        assert_eq!(
            masks.len(),
            self.entries.len(),
            "torn mask width must match the census"
        );
        let mut img = self.base.fork();
        for (i, e) in self.entries.iter().enumerate() {
            if selected[i] {
                img.write_words(e.line, &e.data, masks[i]);
            }
        }
        img
    }
}

/// Result of a timed cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the access hit in the issuing core's L1 (upgrades count as
    /// hits: the data was present).
    pub l1_hit: bool,
    /// Cycles until the data is available / the store is performed.
    pub cost: u64,
    /// The portion of `cost` spent waiting on NVMM (loads may overlap this
    /// across MSHRs — see `MachineConfig::mlp`).
    pub nvmm_cycles: u64,
}

/// Outcome of a flush-style operation (`clflushopt`/`clwb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Cycles charged at issue (flushes are posted, not blocking).
    pub issue_cost: u64,
    /// Time at which the writeback (if any) is durable in NVMM and the
    /// line is globally observable; `sfence` waits for this.
    pub completion: u64,
    /// Whether a dirty line was actually written to NVMM.
    pub wrote: bool,
}

fn sharer_bits(mut mask: u64) -> impl Iterator<Item = usize> {
    // Walk set bits directly (ascending) instead of scanning all 64
    // positions; directory masks are almost always 0- or 1-bit.
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(i)
        }
    })
}

/// The complete shared memory system of a simulated machine.
#[derive(Debug)]
pub struct MemSystem {
    /// Machine configuration (latencies, geometries).
    pub cfg: MachineConfig,
    l1s: Vec<L1Cache>,
    l2: L2Cache,
    mc: MemCtrl,
    nvmm: Nvmm,
    /// Shared memory-system statistics.
    pub stats: MemStats,
    crashed: bool,
    trigger: Option<CrashTrigger>,
    mem_ops: u64,
    global_time: u64,
    cleaner: Option<CleanerState>,
    observer: ObserverSlot,
    adr_tracking: bool,
    pending_flushes: Vec<PendingFlush>,
    crash_census: Option<CrashCensus>,
    /// Ascending op indices at which to capture a census snapshot without
    /// crashing (the model checker's snapshot-resume forward pass).
    snapshot_points: Vec<u64>,
    snapshot_cursor: usize,
    snapshots: Vec<(u64, CrashCensus)>,
    /// When set, every store/flush/sfence op index (and each region
    /// commit) is recorded as a crash-point candidate.
    candidate_tracking: bool,
    crash_candidates: Vec<u64>,
    /// Per-core open persistency region `(id, key)` announced via
    /// [`crate::core::CoreCtx::region_begin`].
    open_regions: Vec<Option<(RegionId, usize)>>,
    next_region: u64,
    /// Per-core last-accessed L1 `(line, way)` memo. Validated against the
    /// cache on every use (the way may have been reused), so it is purely
    /// a lookup shortcut with no semantic weight.
    l1_memo: Vec<(u64, usize)>,
    /// Cached dispatch mode: `true` when no per-op instrumentation
    /// (candidate tracking, cleaner, census snapshots, crash trigger) is
    /// armed, letting [`MemSystem::after_op`] skip all of those checks.
    /// Maintained by [`MemSystem::refresh_dispatch_mode`].
    quiet_ops: bool,
}

impl MemSystem {
    /// Build the memory system for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let l1s = (0..cfg.cores)
            .map(|_| L1Cache::new(cfg.l1_bytes, cfg.l1_assoc))
            .collect();
        let l2 = L2Cache::new(cfg.l2_bytes, cfg.l2_assoc);
        let mc = MemCtrl::new(
            cfg.mc_read_queue,
            cfg.mc_write_queue,
            cfg.mc_read_gap,
            cfg.mc_write_gap,
            cfg.nvmm_read_cycles(),
            cfg.nvmm_write_cycles(),
        );
        let nvmm = Nvmm::new(cfg.nvmm_bytes);
        let cleaner = cfg.cleaner.map(CleanerState::new);
        let open_regions = vec![None; cfg.cores];
        let l1_memo = vec![(u64::MAX, 0usize); cfg.cores];
        let quiet_ops = cleaner.is_none();
        MemSystem {
            cfg,
            l1s,
            l2,
            mc,
            nvmm,
            stats: MemStats::default(),
            crashed: false,
            trigger: None,
            mem_ops: 0,
            global_time: 0,
            cleaner,
            observer: ObserverSlot::default(),
            adr_tracking: false,
            pending_flushes: Vec::new(),
            crash_census: None,
            snapshot_points: Vec::new(),
            snapshot_cursor: 0,
            snapshots: Vec::new(),
            candidate_tracking: false,
            crash_candidates: Vec::new(),
            open_regions,
            next_region: 0,
            l1_memo,
            quiet_ops,
        }
    }

    /// Recompute the cached dispatch mode after any instrumentation
    /// toggle. `quiet_ops` must be `true` iff [`MemSystem::after_op`] has
    /// no work beyond the clock/op-counter updates.
    fn refresh_dispatch_mode(&mut self) {
        self.quiet_ops = !self.candidate_tracking
            && self.cleaner.is_none()
            && self.snapshot_points.is_empty()
            && self.trigger.is_none();
    }

    // ------------------------------------------------------------------
    // ADR crash-state tracking (opt-in; zero work when disabled)
    // ------------------------------------------------------------------

    /// Enable or disable ADR crash-state tracking. While enabled, flush
    /// writebacks record maybe-durable deltas and a crash captures a
    /// [`CrashCensus`]. Disabling clears any pending state.
    pub fn set_adr_tracking(&mut self, on: bool) {
        self.adr_tracking = on;
        if !on {
            self.pending_flushes.clear();
            self.crash_census = None;
            self.snapshot_points.clear();
            self.snapshot_cursor = 0;
            self.snapshots.clear();
            self.refresh_dispatch_mode();
        }
    }

    /// Whether ADR crash-state tracking is enabled.
    pub fn adr_tracking(&self) -> bool {
        self.adr_tracking
    }

    /// Take the census captured by the most recent acknowledged crash, if
    /// tracking was enabled when it fired.
    pub fn take_crash_census(&mut self) -> Option<CrashCensus> {
        self.crash_census.take()
    }

    /// Arm non-destructive census snapshots at the given op indices: when
    /// `mem_ops` reaches each point, [`MemSystem::after_op`] captures the
    /// same [`CrashCensus`] a crash at that op would have, without
    /// crashing. Points are sorted and deduplicated; any previously
    /// collected snapshots are discarded.
    ///
    /// This is the model checker's snapshot-resume pass: one forward run
    /// replaces a replay-from-op-0 per crash point, because the simulator
    /// is deterministic and an armed crash has no effect before it fires —
    /// the machine state at op `p` is identical either way.
    ///
    /// # Panics
    ///
    /// Panics unless ADR tracking is enabled (a census needs the pending
    /// flush deltas).
    pub fn set_snapshot_points(&mut self, points: &[u64]) {
        assert!(
            self.adr_tracking,
            "census snapshots require ADR tracking to be enabled first"
        );
        let mut pts = points.to_vec();
        pts.sort_unstable();
        pts.dedup();
        self.snapshot_points = pts;
        self.snapshot_cursor = 0;
        self.snapshots.clear();
        self.refresh_dispatch_mode();
    }

    /// Take the `(op, census)` snapshots collected since
    /// [`MemSystem::set_snapshot_points`], in op order, and disarm
    /// snapshotting. Points the run never reached produce no entry.
    pub fn take_snapshots(&mut self) -> Vec<(u64, CrashCensus)> {
        self.snapshot_points.clear();
        self.snapshot_cursor = 0;
        self.refresh_dispatch_mode();
        std::mem::take(&mut self.snapshots)
    }

    /// Enable or disable crash-point candidate recording (see
    /// [`MemSystem::take_crash_candidates`]). Enabling clears any
    /// previously recorded candidates. Purely observational: no timing or
    /// functional effect.
    pub fn set_candidate_tracking(&mut self, on: bool) {
        self.candidate_tracking = on;
        self.crash_candidates.clear();
        self.refresh_dispatch_mode();
    }

    /// Take the recorded crash-point candidates — the op indices of every
    /// store, flush, and sfence (loads advance the op clock but expose no
    /// new NVMM write), plus each region commit's last op — ascending and
    /// deduplicated — and disarm tracking.
    pub fn take_crash_candidates(&mut self) -> Vec<u64> {
        self.candidate_tracking = false;
        self.refresh_dispatch_mode();
        let mut out = std::mem::take(&mut self.crash_candidates);
        out.dedup();
        out
    }

    /// Retire every pending (maybe-durable) flush issued by `core`: called
    /// on `sfence`, after which ADR guarantees those writebacks are
    /// durable.
    pub(crate) fn retire_pending_flushes(&mut self, core: usize) {
        if self.adr_tracking {
            self.pending_flushes.retain(|p| p.core != core);
        }
    }

    /// Retire every pending flush of `line`: called when the line is
    /// definitely written to (or read back from) NVMM, which proves the
    /// earlier writeback reached the memory controller.
    fn retire_pending_line(&mut self, line: LineAddr) {
        if self.adr_tracking {
            self.pending_flushes.retain(|p| p.line != line);
        }
    }

    /// Build the census of maybe-durable lines for the machine's *current*
    /// state, non-destructively: callable both at crash time (before the
    /// caches are wiped) and mid-run by the snapshot pass.
    fn build_census(&self) -> CrashCensus {
        // Floor image: revert un-fenced flush writes, newest first, so the
        // oldest pre-image of a multiply-flushed line wins.
        let mut base = self.nvmm.fork();
        for p in self.pending_flushes.iter().rev() {
            base.write_line(p.line, &p.pre);
        }
        let mut entries: Vec<CensusEntry> = self
            .pending_flushes
            .iter()
            .map(|p| CensusEntry {
                line: p.line,
                data: p.data,
                origin: CensusOrigin::PendingFlush { core: p.core },
            })
            .collect();
        // Dirty lines, freshest copy first (L1 Modified owner over L2).
        // They rank after pending flushes: a line that was flushed and
        // then re-dirtied holds strictly newer data in the cache.
        for idx in self.l2.valid_ways() {
            let w = self.l2.way(idx);
            let mut entry = if w.dirty {
                Some(CensusEntry {
                    line: w.line,
                    data: w.data,
                    origin: CensusOrigin::DirtyL2,
                })
            } else {
                None
            };
            if let Some(o) = w.owner.map(usize::from) {
                if let Some(i1) = self.l1s[o].find(w.line) {
                    let w1 = self.l1s[o].way(i1);
                    if w1.state == Mesi::Modified {
                        entry = Some(CensusEntry {
                            line: w.line,
                            data: w1.data,
                            origin: CensusOrigin::DirtyL1 { core: o },
                        });
                    }
                }
            }
            if let Some(e) = entry {
                entries.push(e);
            }
        }
        CrashCensus { base, entries }
    }

    // ------------------------------------------------------------------
    // Event observation (opt-in; zero work when no sink is installed)
    // ------------------------------------------------------------------

    /// Install an event sink; see [`crate::observe`].
    pub fn set_observer(&mut self, sink: SharedSink) {
        self.observer.install(sink);
    }

    /// Remove the event sink, restoring the zero-overhead default path.
    pub fn clear_observer(&mut self) {
        self.observer.clear();
    }

    /// Whether an event sink is installed.
    pub fn observer_installed(&self) -> bool {
        self.observer.is_some()
    }

    /// The region `core` currently has open, if any.
    pub fn open_region(&self, core: usize) -> Option<RegionId> {
        self.open_regions[core].map(|(id, _)| id)
    }

    /// Announce that `core` opened a persistency region with table/marker
    /// key `key`. Returns the region's dynamic identity. Purely
    /// observational: no timing or functional effect.
    pub fn announce_region_begin(&mut self, core: usize, cycle: u64, key: usize) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.open_regions[core] = Some((id, key));
        self.observer.emit(MemEvent::RegionBegin {
            core,
            cycle,
            region: id,
            key,
        });
        id
    }

    /// Announce that `core` committed (closed) its open region, if any.
    pub fn announce_region_end(&mut self, core: usize, cycle: u64) {
        if let Some((region, key)) = self.open_regions[core].take() {
            // A commit is a crash-point candidate at its last constituent
            // op (usually already recorded; deduplicated on take).
            if self.candidate_tracking && self.mem_ops > 0 {
                self.crash_candidates.push(self.mem_ops);
            }
            self.observer.emit(MemEvent::RegionCommit {
                core,
                cycle,
                region,
                key,
            });
        }
    }

    /// Emit a [`MemEvent::Store`] tagged with `core`'s open region.
    pub(crate) fn observe_store(
        &self,
        core: usize,
        cycle: u64,
        addr: Addr,
        bits: u64,
        size: usize,
    ) {
        if self.observer.is_some() {
            self.observer.emit(MemEvent::Store {
                core,
                cycle,
                addr,
                bits,
                size,
                region: self.open_region(core),
            });
        }
    }

    /// Emit a [`MemEvent::Load`] tagged with `core`'s open region.
    pub(crate) fn observe_load(&self, core: usize, cycle: u64, addr: Addr, size: usize) {
        if self.observer.is_some() {
            self.observer.emit(MemEvent::Load {
                core,
                cycle,
                addr,
                size,
                region: self.open_region(core),
            });
        }
    }

    /// Emit a [`MemEvent::Flush`] tagged with `core`'s open region.
    pub(crate) fn observe_flush(&self, core: usize, cycle: u64, line: LineAddr, keep: bool) {
        if self.observer.is_some() {
            self.observer.emit(MemEvent::Flush {
                core,
                cycle,
                line,
                keep,
                region: self.open_region(core),
            });
        }
    }

    /// Emit a [`MemEvent::Sfence`] tagged with `core`'s open region.
    pub(crate) fn observe_sfence(&self, core: usize, cycle: u64) {
        if self.observer.is_some() {
            self.observer.emit(MemEvent::Sfence {
                core,
                cycle,
                region: self.open_region(core),
            });
        }
    }

    /// Emit a [`MemEvent::Barrier`] (called by the scheduler).
    pub(crate) fn observe_barrier(&self, cycle: u64) {
        self.observer.emit(MemEvent::Barrier { cycle });
    }

    /// Whether the machine has crashed (power lost).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Arm (or disarm, with `None`) the crash trigger.
    pub fn set_crash_trigger(&mut self, trigger: Option<CrashTrigger>) {
        self.trigger = trigger;
        self.refresh_dispatch_mode();
    }

    /// Force an immediate crash.
    pub fn force_crash(&mut self) {
        self.crashed = true;
        self.observer.emit(MemEvent::Crash {
            cycle: self.global_time,
        });
    }

    /// Acknowledge a crash: drop all cache state *without writing anything
    /// back* (volatile contents are lost) and power the machine back on.
    pub fn acknowledge_crash(&mut self) {
        if self.adr_tracking {
            self.crash_census = Some(self.build_census());
            self.pending_flushes.clear();
        }
        for l1 in &mut self.l1s {
            l1.wipe();
        }
        self.l2.wipe();
        self.crashed = false;
        self.trigger = None;
        self.refresh_dispatch_mode();
    }

    /// Direct access to the durable image (setup/inspection).
    pub fn nvmm(&self) -> &Nvmm {
        &self.nvmm
    }

    /// Mutable access to the durable image (setup). Prefer
    /// [`crate::machine::Machine::poke`] which also invalidates stale
    /// cached copies.
    pub fn nvmm_mut(&mut self) -> &mut Nvmm {
        &mut self.nvmm
    }

    /// Inject a media error: poison `line` in the NVMM image (it reads as
    /// the [`crate::mem::POISON_BYTE`] pattern until a writeback scrubs
    /// it) and drop any cached copy so stale clean data cannot mask the
    /// fault.
    pub fn poison_line(&mut self, line: LineAddr) {
        self.invalidate_everywhere(line);
        self.nvmm.poison_line(line);
    }

    /// Currently poisoned NVMM lines, ascending (see
    /// [`crate::mem::Nvmm::poisoned_lines`]).
    pub fn poisoned_lines(&self) -> Vec<LineAddr> {
        self.nvmm.poisoned_lines()
    }

    /// [`MemSystem::poisoned_lines`] into a caller-owned buffer (cleared
    /// first), so tight loops can reuse the allocation.
    pub fn poisoned_lines_into(&self, out: &mut Vec<LineAddr>) {
        self.nvmm.poisoned_lines_into(out);
    }

    /// Whether any NVMM line is currently poisoned (no allocation).
    pub fn has_poisoned_lines(&self) -> bool {
        self.nvmm.poisoned_count() != 0
    }

    /// Replace the durable image wholesale (crash-state exploration).
    ///
    /// # Panics
    ///
    /// Panics if the image capacity does not match the configuration.
    pub fn install_nvmm(&mut self, image: Nvmm) {
        assert_eq!(
            image.capacity(),
            self.cfg.nvmm_bytes,
            "installed image capacity must match cfg.nvmm_bytes"
        );
        self.nvmm = image;
    }

    /// Drop any cached copy of `line` without writeback (used by `poke` so
    /// a direct image write cannot be shadowed by stale cache data).
    pub fn invalidate_everywhere(&mut self, line: LineAddr) {
        if let Some(l2idx) = self.l2.find(line) {
            let sharers = self.l2.way(l2idx).sharers;
            for o in sharer_bits(sharers) {
                self.l1s[o].invalidate(line);
            }
            let w = self.l2.way_mut(l2idx);
            w.valid = false;
            w.dirty = false;
            w.sharers = 0;
            w.owner = None;
        }
    }

    /// Current global time estimate (max core cycle seen so far).
    pub fn global_time(&self) -> u64 {
        self.global_time
    }

    /// Total memory operations processed.
    pub fn mem_ops(&self) -> u64 {
        self.mem_ops
    }

    /// Number of lines currently resident in the L2.
    pub fn l2_resident(&self) -> usize {
        self.l2.resident()
    }

    /// Enumerate every dirty line with its location metadata (see
    /// [`crate::debug::dirty_inventory`] for the sorted, user-facing view).
    pub fn collect_dirty_lines(&self) -> Vec<crate::debug::DirtyLine> {
        let mut out = Vec::new();
        self.collect_dirty_lines_into(&mut out);
        out
    }

    /// [`MemSystem::collect_dirty_lines`] into a caller-owned buffer
    /// (cleared first), so tight loops can reuse the allocation.
    pub fn collect_dirty_lines_into(&self, out: &mut Vec<crate::debug::DirtyLine>) {
        out.clear();
        for idx in self.l2.valid_ways() {
            let w = self.l2.way(idx);
            let mut entry: Option<crate::debug::DirtyLine> = None;
            if w.dirty {
                entry = Some(crate::debug::DirtyLine {
                    line: w.line,
                    owner: None,
                    dirty_since: w.dirty_since,
                });
            }
            if let Some(o) = w.owner.map(usize::from) {
                if let Some(i1) = self.l1s[o].find(w.line) {
                    let w1 = self.l1s[o].way(i1);
                    if w1.state == Mesi::Modified {
                        let since =
                            entry.map_or(w1.dirty_since, |e| e.dirty_since.min(w1.dirty_since));
                        entry = Some(crate::debug::DirtyLine {
                            line: w.line,
                            owner: Some(o),
                            dirty_since: since,
                        });
                    }
                }
            }
            if let Some(e) = entry {
                out.push(e);
            }
        }
    }

    /// Number of currently dirty lines anywhere in the hierarchy.
    pub fn dirty_lines(&self) -> usize {
        let mut n = 0;
        for idx in self.l2.valid_ways() {
            let w = self.l2.way(idx);
            let mut dirty = w.dirty;
            if let Some(o) = w.owner {
                if let Some(i1) = self.l1s[o as usize].find(w.line) {
                    dirty |= self.l1s[o as usize].way(i1).state == Mesi::Modified;
                }
            }
            if dirty {
                n += 1;
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Core-facing timed operations
    // ------------------------------------------------------------------

    /// Guarantee `line` is present in `core`'s L1 with read (shared) or
    /// write (exclusive, dirty) permission, applying all coherence side
    /// effects. Returns the hit level and cycle cost.
    ///
    /// No-op returning zero cost after a crash.
    pub fn ensure_in_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        now: u64,
        for_write: bool,
    ) -> Access {
        if self.crashed {
            return Access {
                l1_hit: true,
                cost: 0,
                nvmm_cycles: 0,
            };
        }
        let probe = self.l1s[core].find(line);
        self.ensure_in_l1_probed(core, line, now, for_write, probe)
            .0
    }

    /// Way of `core`'s L1 holding `line`, if resident. A per-core
    /// last-way memo short-circuits the set-associative find; the memo is
    /// validated against the cache on every use, so stale entries (after
    /// evictions, invalidations, or wipes) are harmless.
    pub(crate) fn l1_probe(&mut self, core: usize, line: LineAddr) -> Option<usize> {
        let (memo_line, memo_way) = self.l1_memo[core];
        if memo_line == line.0 {
            let w = self.l1s[core].way(memo_way);
            if w.state != Mesi::Invalid && w.line == line {
                return Some(memo_way);
            }
        }
        let found = self.l1s[core].find(line);
        if let Some(idx) = found {
            self.l1_memo[core] = (line.0, idx);
        }
        found
    }

    /// [`MemSystem::ensure_in_l1`] with the residence probe hoisted out:
    /// `probe` is `core`'s way holding `line` (`None` = definitively
    /// absent), normally from [`MemSystem::l1_probe`]. Returns the access
    /// plus the way now holding the line, which
    /// [`MemSystem::l1_read_scalar_at`] / [`MemSystem::l1_write_scalar_at`]
    /// accept to skip re-finding it. No other cache operation may
    /// intervene between the probe and this call, and the machine must not
    /// be crashed (callers in [`crate::core::CoreCtx`] check once per op).
    pub(crate) fn ensure_in_l1_probed(
        &mut self,
        core: usize,
        line: LineAddr,
        now: u64,
        for_write: bool,
        probe: Option<usize>,
    ) -> (Access, usize) {
        debug_assert!(!self.crashed, "ensure_in_l1_probed on a crashed machine");
        let l1_lat = self.cfg.l1_latency;
        let l2_lat = self.cfg.l2_latency;

        if let Some(idx) = probe {
            self.l1s[core].touch(idx);
            let state = self.l1s[core].way(idx).state;
            let cost = match (state, for_write) {
                (Mesi::Modified, _) | (Mesi::Exclusive | Mesi::Shared, false) => l1_lat,
                (Mesi::Exclusive, true) => {
                    let w = self.l1s[core].way_mut(idx);
                    w.state = Mesi::Modified;
                    w.dirty_since = now;
                    l1_lat
                }
                (Mesi::Shared, true) => {
                    // Upgrade: invalidate the other sharers through the
                    // directory, then take ownership.
                    let l2idx = self.l2.find(line).expect("inclusion: S line in L2");
                    let sharers = self.l2.way(l2idx).sharers;
                    for o in sharer_bits(sharers) {
                        if o != core && self.l1s[o].invalidate(line).is_some() {
                            self.stats.coherence_invalidations += 1;
                        }
                    }
                    let w2 = self.l2.way_mut(l2idx);
                    w2.sharers = 1u64 << core;
                    w2.owner = Some(core as u8);
                    self.l2.touch(l2idx);
                    let w = self.l1s[core].way_mut(idx);
                    w.state = Mesi::Modified;
                    w.dirty_since = now;
                    l1_lat + l2_lat
                }
                (Mesi::Invalid, _) => unreachable!("find() returned an invalid way"),
            };
            return (
                Access {
                    l1_hit: true,
                    cost,
                    nvmm_cycles: 0,
                },
                idx,
            );
        }

        // L1 miss: consult the L2.
        let mut cost = l1_lat + l2_lat;
        let mut nvmm_cycles = 0u64;
        let (data, state, dirty_since) = if let Some(l2idx) = self.l2.find(line) {
            self.stats.l2_hits += 1;
            self.l2.touch(l2idx);
            let owner = self.l2.way(l2idx).owner.map(usize::from);
            // Recall / downgrade a remote exclusive owner.
            if let Some(o) = owner {
                debug_assert_ne!(o, core, "owner missed in its own L1");
                if for_write {
                    if let Some(ev) = self.l1s[o].invalidate(line) {
                        if ev.state == Mesi::Modified {
                            let w = self.l2.way_mut(l2idx);
                            w.data = ev.data;
                            w.dirty_since = if w.dirty {
                                w.dirty_since.min(ev.dirty_since)
                            } else {
                                ev.dirty_since
                            };
                            w.dirty = true;
                            self.stats.coherence_recalls += 1;
                        } else {
                            self.stats.coherence_invalidations += 1;
                        }
                    }
                    let w = self.l2.way_mut(l2idx);
                    w.sharers &= !(1u64 << o);
                    w.owner = None;
                } else if let Some(i1) = self.l1s[o].find(line) {
                    let (d, ds, was_m) = {
                        let w1 = self.l1s[o].way_mut(i1);
                        let was_m = w1.state == Mesi::Modified;
                        w1.state = Mesi::Shared;
                        (w1.data, w1.dirty_since, was_m)
                    };
                    if was_m {
                        let w = self.l2.way_mut(l2idx);
                        w.data = d;
                        w.dirty_since = if w.dirty { w.dirty_since.min(ds) } else { ds };
                        w.dirty = true;
                        self.stats.coherence_recalls += 1;
                    }
                    self.l2.way_mut(l2idx).owner = None;
                }
                cost += l2_lat; // snoop round-trip
            }
            if for_write {
                // Invalidate the remaining (shared) copies.
                let sharers = self.l2.way(l2idx).sharers;
                for o in sharer_bits(sharers) {
                    if o != core && self.l1s[o].invalidate(line).is_some() {
                        self.stats.coherence_invalidations += 1;
                    }
                }
                let w = self.l2.way_mut(l2idx);
                w.sharers = 1u64 << core;
                w.owner = Some(core as u8);
                (w.data, Mesi::Modified, now)
            } else {
                let w = self.l2.way_mut(l2idx);
                w.sharers |= 1u64 << core;
                let sole = w.sharers == 1u64 << core;
                w.owner = if sole { Some(core as u8) } else { None };
                let st = if sole { Mesi::Exclusive } else { Mesi::Shared };
                (w.data, st, 0)
            }
        } else {
            // L2 miss: fetch the line from NVMM (or forward it straight
            // out of the memory controller's write queue if it was just
            // written there).
            self.stats.l2_misses += 1;
            let (completion, forwarded) =
                self.mc
                    .schedule_read(line, now + cost, self.cfg.mc_forward_latency, core);
            if !forwarded {
                self.stats.nvmm_reads += 1;
            }
            nvmm_cycles = completion.saturating_sub(now + cost);
            cost = completion.saturating_sub(now) + l1_lat;
            let way = self.l2.victim_way(line);
            if self.l2.way(way).valid {
                self.evict_l2_way(way, now + cost, core);
            }
            // The fetch observes the line's writeback at the memory
            // controller, so any maybe-durable flush of it is now
            // definitely durable.
            self.retire_pending_line(line);
            let mut buf = [0u8; LINE_BYTES];
            self.nvmm.read_line(line, &mut buf);
            self.l2.install(way, line, buf, core, true);
            if for_write {
                self.l2.way_mut(way).owner = Some(core as u8);
                (buf, Mesi::Modified, now)
            } else {
                (buf, Mesi::Exclusive, 0)
            }
        };
        let way = self.install_in_l1(core, line, data, state, dirty_since);
        (
            Access {
                l1_hit: false,
                cost,
                nvmm_cycles,
            },
            way,
        )
    }

    /// Install a line in `core`'s L1, propagating any dirty victim into the
    /// (inclusive) L2 and fixing the directory. Returns the way used.
    fn install_in_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        data: [u8; LINE_BYTES],
        state: Mesi,
        dirty_since: u64,
    ) -> usize {
        let (way, victim) = self.l1s[core].insert(line, data, state, dirty_since);
        self.l1_memo[core] = (line.0, way);
        if let Some(ev) = victim {
            let l2idx = self
                .l2
                .find(ev.line)
                .expect("inclusion: L1 victim must be in L2");
            let w = self.l2.way_mut(l2idx);
            w.sharers &= !(1u64 << core);
            if w.owner == Some(core as u8) {
                w.owner = None;
            }
            if ev.state == Mesi::Modified {
                w.data = ev.data;
                w.dirty_since = if w.dirty {
                    w.dirty_since.min(ev.dirty_since)
                } else {
                    ev.dirty_since
                };
                w.dirty = true;
            }
        }
        way
    }

    /// Evict the occupant of L2 way `way`: back-invalidate L1 copies,
    /// write the line to NVMM if dirty, and free the way. The eviction is
    /// attributed to the requesting `core` for queue-timing purposes.
    fn evict_l2_way(&mut self, way: usize, now: u64, core: usize) {
        let (line, sharers) = {
            let w = self.l2.way(way);
            (w.line, w.sharers)
        };
        for o in sharer_bits(sharers) {
            if let Some(ev) = self.l1s[o].invalidate(line) {
                self.stats.coherence_invalidations += 1;
                if ev.state == Mesi::Modified {
                    let w = self.l2.way_mut(way);
                    w.data = ev.data;
                    w.dirty_since = if w.dirty {
                        w.dirty_since.min(ev.dirty_since)
                    } else {
                        ev.dirty_since
                    };
                    w.dirty = true;
                }
            }
        }
        let (dirty, data, dirty_since) = {
            let w = self.l2.way(way);
            (w.dirty, w.data, w.dirty_since)
        };
        if dirty {
            let w = self.mc.schedule_write(line, now, core);
            self.retire_pending_line(line);
            self.nvmm.write_line(line, &data);
            if !w.merged {
                self.stats.record_write(WriteCause::Eviction);
                self.stats
                    .record_volatility(now.saturating_sub(dirty_since));
            }
            self.observer.emit(MemEvent::LineDurable {
                line,
                cycle: now,
                cause: WriteCause::Eviction,
            });
        }
        let w = self.l2.way_mut(way);
        w.valid = false;
        w.dirty = false;
        w.sharers = 0;
        w.owner = None;
    }

    /// `clflushopt` (`keep == false`) or `clwb` (`keep == true`) of one
    /// line: write the freshest dirty copy (if any) to NVMM via the ADR
    /// write queue, invalidating (or retaining clean) the cached copies.
    ///
    /// No-op after a crash.
    pub fn flush_line(
        &mut self,
        line: LineAddr,
        now: u64,
        keep: bool,
        core: usize,
    ) -> FlushOutcome {
        if self.crashed {
            return FlushOutcome {
                issue_cost: 0,
                completion: now,
                wrote: false,
            };
        }
        let mut dirty = false;
        let mut data = [0u8; LINE_BYTES];
        let mut dirty_since = u64::MAX;
        if let Some(l2idx) = self.l2.find(line) {
            let sharers = self.l2.way(l2idx).sharers;
            for o in sharer_bits(sharers) {
                if keep {
                    if let Some(i1) = self.l1s[o].find(line) {
                        let w1 = self.l1s[o].way_mut(i1);
                        if w1.state == Mesi::Modified {
                            dirty = true;
                            data = w1.data;
                            dirty_since = dirty_since.min(w1.dirty_since);
                            w1.state = Mesi::Exclusive;
                        }
                    }
                } else if let Some(ev) = self.l1s[o].invalidate(line) {
                    if ev.state == Mesi::Modified {
                        dirty = true;
                        data = ev.data;
                        dirty_since = dirty_since.min(ev.dirty_since);
                    }
                }
            }
            let w = self.l2.way_mut(l2idx);
            if w.dirty {
                if !dirty {
                    data = w.data;
                }
                dirty = true;
                dirty_since = dirty_since.min(w.dirty_since);
            } else if !dirty {
                data = w.data;
            }
            if keep {
                if dirty {
                    w.data = data;
                }
                w.dirty = false;
                w.dirty_since = 0;
            } else {
                w.valid = false;
                w.dirty = false;
                w.sharers = 0;
                w.owner = None;
            }
        }
        let issue_cost = 2;
        if dirty {
            let w = self.mc.schedule_write(line, now, core);
            if self.adr_tracking {
                // The writeback lands in the image now, but ADR only
                // guarantees it once the issuing core fences: record the
                // pre-image so a crash model can revert it.
                let mut pre = [0u8; LINE_BYTES];
                self.nvmm.read_line(line, &mut pre);
                self.pending_flushes.push(PendingFlush {
                    line,
                    pre,
                    data,
                    core,
                });
            }
            self.nvmm.write_line(line, &data);
            if !w.merged {
                self.stats.record_write(if keep {
                    WriteCause::Clwb
                } else {
                    WriteCause::Flush
                });
                self.stats
                    .record_volatility(now.saturating_sub(dirty_since));
            }
            self.observer.emit(MemEvent::LineDurable {
                line,
                cycle: now,
                cause: if keep {
                    WriteCause::Clwb
                } else {
                    WriteCause::Flush
                },
            });
            FlushOutcome {
                issue_cost,
                completion: w.completion,
                wrote: true,
            }
        } else {
            FlushOutcome {
                issue_cost,
                completion: now,
                wrote: false,
            }
        }
    }

    /// Write back (without evicting) every dirty line in the hierarchy.
    /// Used by the periodic cleaner and by harness-requested drains.
    /// Returns the number of lines written.
    pub fn writeback_all_dirty(&mut self, now: u64, cause: WriteCause) -> u64 {
        let mut written = 0;
        for way in 0..self.l2.num_ways() {
            if !self.l2.way(way).valid {
                continue;
            }
            let (line, owner) = {
                let w = self.l2.way(way);
                (w.line, w.owner)
            };
            let mut dirty;
            let mut data;
            let mut dirty_since;
            {
                let w = self.l2.way(way);
                dirty = w.dirty;
                data = w.data;
                dirty_since = if w.dirty { w.dirty_since } else { u64::MAX };
            }
            if let Some(o) = owner.map(usize::from) {
                if let Some(i1) = self.l1s[o].find(line) {
                    let w1 = self.l1s[o].way_mut(i1);
                    if w1.state == Mesi::Modified {
                        data = w1.data;
                        dirty_since = dirty_since.min(w1.dirty_since);
                        dirty = true;
                        w1.state = Mesi::Exclusive;
                    }
                }
            }
            if dirty {
                self.retire_pending_line(line);
                self.nvmm.write_line(line, &data);
                self.stats.record_write(cause);
                self.stats
                    .record_volatility(now.saturating_sub(dirty_since));
                self.observer.emit(MemEvent::LineDurable {
                    line,
                    cycle: now,
                    cause,
                });
                let w = self.l2.way_mut(way);
                w.data = data;
                w.dirty = false;
                w.dirty_since = 0;
                written += 1;
            }
        }
        written
    }

    /// Bookkeeping after every core-issued memory operation: advance the
    /// global clock, record a crash-point candidate if tracking is on,
    /// run the cleaner if due, capture any due census snapshot, and
    /// evaluate the crash trigger.
    ///
    /// `candidate` marks ops after which a crash can expose a new NVMM
    /// state (stores, flushes, fences — not loads).
    #[inline]
    pub fn after_op(&mut self, core_now: u64, candidate: bool) {
        self.global_time = self.global_time.max(core_now);
        self.mem_ops += 1;
        if !self.quiet_ops {
            self.after_op_instrumented(candidate);
        }
    }

    /// The instrumented tail of [`MemSystem::after_op`]: candidate
    /// recording, cleaner sweeps, census snapshots, and the crash trigger.
    /// Split out so uninstrumented runs pay a single predicted branch.
    fn after_op_instrumented(&mut self, candidate: bool) {
        if self.candidate_tracking && candidate {
            self.crash_candidates.push(self.mem_ops);
        }
        if let Some(cleaner) = &mut self.cleaner {
            if cleaner.due(self.global_time) {
                let t = self.global_time;
                self.writeback_all_dirty(t, WriteCause::Cleaner);
            }
        }
        // Snapshot capture sits exactly where the crash trigger evaluates
        // (after the cleaner), so the census recorded here is
        // byte-identical to the one a crash at this op would capture.
        while self
            .snapshot_points
            .get(self.snapshot_cursor)
            .is_some_and(|&p| self.mem_ops >= p)
        {
            let p = self.snapshot_points[self.snapshot_cursor];
            let census = self.build_census();
            self.snapshots.push((p, census));
            self.snapshot_cursor += 1;
        }
        if let Some(trigger) = self.trigger {
            let fire = match trigger {
                CrashTrigger::AfterMemOps(n) => self.mem_ops >= n,
                CrashTrigger::AfterNvmmWrites(n) => self.stats.nvmm_writes() >= n,
                CrashTrigger::AtCycle(c) => self.global_time >= c,
            };
            if fire && !self.crashed {
                self.crashed = true;
                self.observer.emit(MemEvent::Crash {
                    cycle: self.global_time,
                });
            }
        }
    }

    /// Read `len` bytes at `addr` from the coherent view (freshest cached
    /// copy if present, else NVMM). Untimed; for assertions and debugging.
    pub fn read_coherent(&self, line: LineAddr, buf: &mut [u8; LINE_BYTES]) {
        if let Some(l2idx) = self.l2.find(line) {
            let w = self.l2.way(l2idx);
            *buf = w.data;
            if let Some(o) = w.owner.map(usize::from) {
                if let Some(i1) = self.l1s[o].find(line) {
                    let w1 = self.l1s[o].way(i1);
                    if w1.state == Mesi::Modified {
                        *buf = w1.data;
                    }
                }
            }
        } else {
            self.nvmm.read_line(line, buf);
        }
    }

    /// Whether `core`'s L1 currently holds `line` in any valid state.
    pub fn l1_has(&self, core: usize, line: LineAddr) -> bool {
        self.l1s[core].find(line).is_some()
    }

    /// Read a scalar from `core`'s L1. The line must be resident (call
    /// [`MemSystem::ensure_in_l1`] first); after a crash this returns the
    /// default value.
    ///
    /// # Panics
    ///
    /// Panics if the scalar straddles a line boundary (allocations are
    /// line-aligned so this cannot happen for `PArray` elements).
    pub fn l1_read_scalar<T: crate::mem::Scalar>(&self, core: usize, addr: crate::addr::Addr) -> T {
        if self.crashed {
            return T::default();
        }
        let line = addr.line();
        let off = addr.line_offset();
        assert!(off + T::SIZE <= LINE_BYTES, "scalar straddles a line");
        let idx = self.l1s[core]
            .find(line)
            .expect("l1_read_scalar: line not resident");
        let data = &self.l1s[core].way(idx).data;
        let mut bits = [0u8; 8];
        bits[..T::SIZE].copy_from_slice(&data[off..off + T::SIZE]);
        T::from_bits64(u64::from_le_bytes(bits))
    }

    /// Write a scalar into `core`'s L1 (line must be resident and owned).
    ///
    /// # Panics
    ///
    /// Panics if the scalar straddles a line boundary or the line is not
    /// resident.
    pub fn l1_write_scalar<T: crate::mem::Scalar>(
        &mut self,
        core: usize,
        addr: crate::addr::Addr,
        v: T,
    ) {
        if self.crashed {
            return;
        }
        let line = addr.line();
        let off = addr.line_offset();
        assert!(off + T::SIZE <= LINE_BYTES, "scalar straddles a line");
        let idx = self.l1s[core]
            .find(line)
            .expect("l1_write_scalar: line not resident");
        debug_assert_eq!(
            self.l1s[core].way(idx).state,
            Mesi::Modified,
            "writing a line without write permission"
        );
        let bits = v.to_bits64().to_le_bytes();
        self.l1s[core].way_mut(idx).data[off..off + T::SIZE].copy_from_slice(&bits[..T::SIZE]);
    }

    /// [`MemSystem::l1_read_scalar`] with the residence lookup already
    /// done: `way` must come from [`MemSystem::ensure_in_l1_probed`] for
    /// `addr`'s line, with no intervening cache operation.
    pub(crate) fn l1_read_scalar_at<T: crate::mem::Scalar>(
        &self,
        core: usize,
        way: usize,
        addr: crate::addr::Addr,
    ) -> T {
        let off = addr.line_offset();
        debug_assert!(off + T::SIZE <= LINE_BYTES, "scalar straddles a line");
        let w = self.l1s[core].way(way);
        debug_assert_eq!(w.line, addr.line(), "stale way index");
        let mut bits = [0u8; 8];
        bits[..T::SIZE].copy_from_slice(&w.data[off..off + T::SIZE]);
        T::from_bits64(u64::from_le_bytes(bits))
    }

    /// [`MemSystem::l1_write_scalar`] with the residence lookup already
    /// done (same contract as [`MemSystem::l1_read_scalar_at`]).
    pub(crate) fn l1_write_scalar_at<T: crate::mem::Scalar>(
        &mut self,
        core: usize,
        way: usize,
        addr: crate::addr::Addr,
        v: T,
    ) {
        let off = addr.line_offset();
        debug_assert!(off + T::SIZE <= LINE_BYTES, "scalar straddles a line");
        let w = self.l1s[core].way_mut(way);
        debug_assert_eq!(w.line, addr.line(), "stale way index");
        debug_assert_eq!(
            w.state,
            Mesi::Modified,
            "writing a line without write permission"
        );
        let bits = v.to_bits64().to_le_bytes();
        w.data[off..off + T::SIZE].copy_from_slice(&bits[..T::SIZE]);
    }

    /// Check the structural coherence invariants and return the first
    /// violation found, if any:
    ///
    /// 1. *Inclusion*: every valid L1 line exists in the L2.
    /// 2. *Directory soundness*: a core holds a line iff its bit is set in
    ///    the L2 sharers mask.
    /// 3. *Single owner*: at most one core holds a line `Exclusive` or
    ///    `Modified`, it matches the directory owner, and no other core
    ///    holds the line at all while it does.
    /// 4. *Shared is clean everywhere or owned nowhere*: a line with
    ///    multiple sharers has every copy `Shared`.
    ///
    /// Intended for tests and debugging (walks every line).
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1 + 2 (forward): each L1 line is in L2 with our bit set.
        for (c, l1) in self.l1s.iter().enumerate() {
            for idx in l1.valid_ways() {
                let w1 = l1.way(idx);
                let Some(l2idx) = self.l2.find(w1.line) else {
                    return Err(format!("inclusion: core {c} holds {} not in L2", w1.line));
                };
                let w2 = self.l2.way(l2idx);
                if w2.sharers & (1 << c) == 0 {
                    return Err(format!(
                        "directory: core {c} holds {} but sharer bit clear",
                        w1.line
                    ));
                }
                if matches!(w1.state, Mesi::Exclusive | Mesi::Modified) && w2.owner != Some(c as u8)
                {
                    return Err(format!(
                        "owner: core {c} has {} in {:?} but directory owner is {:?}",
                        w1.line, w1.state, w2.owner
                    ));
                }
            }
        }
        // 2 (backward) + 3 + 4 from the directory side.
        for l2idx in self.l2.valid_ways() {
            let w2 = self.l2.way(l2idx);
            let mut holders = 0u32;
            let mut exclusive_holder = None;
            for c in sharer_bits(w2.sharers) {
                let Some(i1) = self.l1s[c].find(w2.line) else {
                    return Err(format!(
                        "directory: sharer bit for core {c} on {} but no L1 copy",
                        w2.line
                    ));
                };
                holders += 1;
                let st = self.l1s[c].way(i1).state;
                if matches!(st, Mesi::Exclusive | Mesi::Modified) {
                    if exclusive_holder.is_some() {
                        return Err(format!("two exclusive holders of {}", w2.line));
                    }
                    exclusive_holder = Some(c);
                }
            }
            if let Some(o) = w2.owner {
                if w2.sharers != 1u64 << o {
                    return Err(format!(
                        "owner {o} of {} coexists with sharers {:#b}",
                        w2.line, w2.sharers
                    ));
                }
            } else if let Some(c) = exclusive_holder {
                return Err(format!(
                    "core {c} holds {} exclusively without directory ownership",
                    w2.line
                ));
            }
            if holders > 1 && exclusive_holder.is_some() {
                return Err(format!("shared line {} has an exclusive copy", w2.line));
            }
        }
        Ok(())
    }

    /// Number of cleaner sweeps performed so far.
    pub fn cleaner_sweeps(&self) -> u64 {
        self.cleaner.as_ref().map_or(0, |c| c.sweeps)
    }

    #[cfg(test)]
    pub(crate) fn l1(&self, core: usize) -> &L1Cache {
        &self.l1s[core]
    }

    #[cfg(test)]
    pub(crate) fn l2(&self) -> &L2Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn small_cfg() -> MachineConfig {
        MachineConfig::default()
            .with_cores(2)
            .with_l1_bytes(1024)
            .with_l2_bytes(4096)
            .with_nvmm_bytes(1 << 20)
    }

    fn write_u64(ms: &mut MemSystem, core: usize, addr: Addr, v: u64, now: u64) {
        let line = addr.line();
        ms.ensure_in_l1(core, line, now, true);
        let idx = ms.l1s[core].find(line).unwrap();
        let off = addr.line_offset();
        ms.l1s[core].way_mut(idx).data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    fn read_u64(ms: &mut MemSystem, core: usize, addr: Addr, now: u64) -> u64 {
        let line = addr.line();
        ms.ensure_in_l1(core, line, now, false);
        let idx = ms.l1s[core].find(line).unwrap();
        let off = addr.line_offset();
        let mut b = [0u8; 8];
        b.copy_from_slice(&ms.l1s[core].way(idx).data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut ms = MemSystem::new(small_cfg());
        let line = LineAddr(10);
        let a1 = ms.ensure_in_l1(0, line, 0, false);
        assert!(!a1.l1_hit);
        assert!(a1.cost >= ms.cfg.nvmm_read_cycles());
        assert_eq!(ms.stats.l2_misses, 1);
        let a2 = ms.ensure_in_l1(0, line, a1.cost, false);
        assert!(a2.l1_hit);
        assert_eq!(a2.cost, ms.cfg.l1_latency);
        assert_eq!(ms.stats.l2_misses, 1);
    }

    #[test]
    fn store_marks_modified_and_owner() {
        let mut ms = MemSystem::new(small_cfg());
        let line = LineAddr(5);
        ms.ensure_in_l1(0, line, 7, true);
        let i1 = ms.l1(0).find(line).unwrap();
        assert_eq!(ms.l1(0).way(i1).state, Mesi::Modified);
        assert_eq!(ms.l1(0).way(i1).dirty_since, 7);
        let l2idx = ms.l2().find(line).unwrap();
        assert_eq!(ms.l2().way(l2idx).owner, Some(0));
    }

    #[test]
    fn read_sharing_downgrades_owner() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 3);
        write_u64(&mut ms, 0, addr, 99, 0);
        // Core 1 reads: must see 99 via recall, both end Shared.
        let v = read_u64(&mut ms, 1, addr, 10);
        assert_eq!(v, 99);
        assert_eq!(ms.stats.coherence_recalls, 1);
        let line = addr.line();
        let s0 = ms.l1(0).way(ms.l1(0).find(line).unwrap()).state;
        let s1 = ms.l1(1).way(ms.l1(1).find(line).unwrap()).state;
        assert_eq!(s0, Mesi::Shared);
        assert_eq!(s1, Mesi::Shared);
        // L2 must now hold the dirty data.
        let l2idx = ms.l2().find(line).unwrap();
        assert!(ms.l2().way(l2idx).dirty);
        assert_eq!(ms.l2().way(l2idx).owner, None);
    }

    #[test]
    fn write_invalidates_peers() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 8);
        write_u64(&mut ms, 0, addr, 1, 0);
        write_u64(&mut ms, 1, addr, 2, 5);
        let line = addr.line();
        assert!(ms.l1(0).find(line).is_none(), "core 0 copy invalidated");
        let i1 = ms.l1(1).find(line).unwrap();
        assert_eq!(ms.l1(1).way(i1).state, Mesi::Modified);
        // Value visible to core 0 again via coherence.
        let v = read_u64(&mut ms, 0, addr, 10);
        assert_eq!(v, 2);
    }

    #[test]
    fn shared_upgrade_invalidates_and_takes_ownership() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 2);
        // Both cores read -> Shared.
        read_u64(&mut ms, 0, addr, 0);
        read_u64(&mut ms, 1, addr, 0);
        let line = addr.line();
        // Core 0 writes: upgrade.
        write_u64(&mut ms, 0, addr, 42, 1);
        assert!(ms.l1(1).find(line).is_none());
        let l2idx = ms.l2().find(line).unwrap();
        assert_eq!(ms.l2().way(l2idx).owner, Some(0));
        assert_eq!(ms.l2().way(l2idx).sharers, 1);
    }

    #[test]
    fn flush_writes_dirty_line_to_nvmm() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 4);
        write_u64(&mut ms, 0, addr, 77, 0);
        let out = ms.flush_line(addr.line(), 100, false, 0);
        assert!(out.wrote);
        assert!(out.completion >= 100 + ms.cfg.nvmm_write_cycles());
        assert_eq!(ms.stats.nvmm_writes_flush, 1);
        // Line gone from caches; durable image has the value.
        assert!(ms.l1(0).find(addr.line()).is_none());
        assert!(ms.l2().find(addr.line()).is_none());
        let mut buf = [0u8; 8];
        ms.nvmm().peek_bytes(addr, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 77);
    }

    #[test]
    fn clwb_retains_clean_line() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 6);
        write_u64(&mut ms, 0, addr, 55, 0);
        let out = ms.flush_line(addr.line(), 50, true, 0);
        assert!(out.wrote);
        assert_eq!(ms.stats.nvmm_writes_clwb, 1);
        // Still cached, now clean (Exclusive).
        let i1 = ms.l1(0).find(addr.line()).unwrap();
        assert_eq!(ms.l1(0).way(i1).state, Mesi::Exclusive);
        // Flushing again writes nothing.
        let out2 = ms.flush_line(addr.line(), 60, false, 0);
        assert!(!out2.wrote);
    }

    #[test]
    fn flush_clean_or_absent_is_cheap() {
        let mut ms = MemSystem::new(small_cfg());
        let out = ms.flush_line(LineAddr(1234), 10, false, 0);
        assert!(!out.wrote);
        assert_eq!(out.completion, 10);
        assert_eq!(ms.stats.nvmm_writes(), 0);
    }

    #[test]
    fn capacity_eviction_writes_back_dirty() {
        // L1 1 KB (16 lines), L2 4 KB (64 lines, 8 sets of 8).
        let mut ms = MemSystem::new(small_cfg());
        // Dirty one line, then stream enough lines through the same L2 set
        // to force its eviction. L2 has 8 sets -> lines k*8 map to set 0.
        write_u64(&mut ms, 0, Addr(0), 13, 0);
        for k in 1..=9u64 {
            read_u64(&mut ms, 0, Addr(k * 8 * 64), k);
        }
        assert!(ms.stats.nvmm_writes_eviction >= 1);
        let mut buf = [0u8; 8];
        ms.nvmm().peek_bytes(Addr(0), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 13, "dirty data reached NVMM");
    }

    #[test]
    fn crash_discards_cached_dirty_data() {
        let mut ms = MemSystem::new(small_cfg());
        write_u64(&mut ms, 0, Addr(0), 21, 0);
        ms.force_crash();
        assert!(ms.crashed());
        // Ops are no-ops while crashed.
        let a = ms.ensure_in_l1(0, LineAddr(0), 1, false);
        assert_eq!(a.cost, 0);
        ms.acknowledge_crash();
        assert!(!ms.crashed());
        // The dirty value never reached NVMM.
        let v = read_u64(&mut ms, 0, Addr(0), 2);
        assert_eq!(v, 0);
    }

    #[test]
    fn crash_trigger_after_mem_ops() {
        let mut ms = MemSystem::new(small_cfg());
        ms.set_crash_trigger(Some(CrashTrigger::AfterMemOps(3)));
        for i in 0..5u64 {
            ms.ensure_in_l1(0, LineAddr(i), i, false);
            ms.after_op(i, true);
        }
        assert!(ms.crashed());
        // Only 3 ops were actually processed as real accesses.
        assert_eq!(ms.mem_ops(), 5); // after_op still counts, accesses no-op
    }

    #[test]
    fn writeback_all_dirty_cleans_hierarchy() {
        let mut ms = MemSystem::new(small_cfg());
        write_u64(&mut ms, 0, Addr(0), 1, 0);
        write_u64(&mut ms, 0, Addr(64), 2, 0);
        write_u64(&mut ms, 1, Addr(128), 3, 0);
        assert_eq!(ms.dirty_lines(), 3);
        let n = ms.writeback_all_dirty(100, WriteCause::Drain);
        assert_eq!(n, 3);
        assert_eq!(ms.dirty_lines(), 0);
        assert_eq!(ms.stats.nvmm_writes_drain, 3);
        let mut buf = [0u8; 8];
        ms.nvmm().peek_bytes(Addr(64), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 2);
        // Data still cached (write back, not evict).
        assert!(ms.l2().find(LineAddr(0)).is_some());
    }

    #[test]
    fn volatility_duration_recorded_on_writeback() {
        let mut ms = MemSystem::new(small_cfg());
        write_u64(&mut ms, 0, Addr(0), 9, 100);
        ms.writeback_all_dirty(350, WriteCause::Drain);
        assert_eq!(ms.stats.max_volatility, 250);
        assert_eq!(ms.stats.volatility_samples, 1);
    }

    #[test]
    fn read_coherent_sees_freshest_copy() {
        let mut ms = MemSystem::new(small_cfg());
        write_u64(&mut ms, 0, Addr(0), 1234, 0);
        let mut buf = [0u8; LINE_BYTES];
        ms.read_coherent(LineAddr(0), &mut buf);
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[0..8]);
        assert_eq!(u64::from_le_bytes(b), 1234);
    }

    #[test]
    fn flush_of_shared_line_invalidates_all_copies() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 5);
        write_u64(&mut ms, 0, addr, 7, 0);
        read_u64(&mut ms, 1, addr, 5); // both cores share the line
        let out = ms.flush_line(addr.line(), 10, false, 1);
        assert!(out.wrote, "recalled dirty data written back");
        assert!(ms.l1(0).find(addr.line()).is_none());
        assert!(ms.l1(1).find(addr.line()).is_none());
        assert!(ms.l2().find(addr.line()).is_none());
        let mut buf = [0u8; 8];
        ms.nvmm().peek_bytes(addr, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 7);
        assert!(ms.check_invariants().is_ok());
    }

    #[test]
    fn clwb_of_shared_clean_line_writes_nothing() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 7);
        read_u64(&mut ms, 0, addr, 0);
        read_u64(&mut ms, 1, addr, 0);
        let out = ms.flush_line(addr.line(), 5, true, 0);
        assert!(!out.wrote);
        assert!(ms.l1(0).find(addr.line()).is_some(), "clwb retains lines");
        assert!(ms.l1(1).find(addr.line()).is_some());
        assert!(ms.check_invariants().is_ok());
    }

    #[test]
    fn invariants_hold_through_a_mixed_workout() {
        let mut ms = MemSystem::new(small_cfg());
        for step in 0..400u64 {
            let core = (step % 2) as usize;
            let addr = Addr((step * 24) % 2048);
            if step % 3 == 0 {
                write_u64(&mut ms, core, addr, step, step);
            } else if step % 7 == 0 {
                ms.flush_line(addr.line(), step, step % 2 == 0, core);
            } else {
                read_u64(&mut ms, core, addr, step);
            }
            assert_eq!(ms.check_invariants(), Ok(()), "after step {step}");
        }
    }

    #[test]
    fn upgrade_of_sole_shared_copy_succeeds() {
        let mut ms = MemSystem::new(small_cfg());
        let addr = Addr(64 * 9);
        // Shared between both, then one evicts... simplest: both read,
        // core 1's copy invalidated by core 0's write, then core 0 writes
        // again while sole owner.
        read_u64(&mut ms, 0, addr, 0);
        read_u64(&mut ms, 1, addr, 0);
        write_u64(&mut ms, 0, addr, 1, 1);
        write_u64(&mut ms, 0, addr, 2, 2);
        assert_eq!(read_u64(&mut ms, 0, addr, 3), 2);
        assert!(ms.check_invariants().is_ok());
    }

    #[test]
    fn invalidate_everywhere_drops_without_writeback() {
        let mut ms = MemSystem::new(small_cfg());
        write_u64(&mut ms, 0, Addr(0), 5, 0);
        ms.invalidate_everywhere(LineAddr(0));
        assert!(ms.l2().find(LineAddr(0)).is_none());
        assert_eq!(ms.stats.nvmm_writes(), 0);
        let v = read_u64(&mut ms, 0, Addr(0), 1);
        assert_eq!(v, 0);
    }

    /// Drive the same store/flush/store sequence on a fresh machine,
    /// either crashing at op 3 or snapshotting op 3, and return the
    /// census either way.
    fn census_at_op_3(snapshot: bool) -> CrashCensus {
        let mut ms = MemSystem::new(small_cfg());
        ms.set_adr_tracking(true);
        if snapshot {
            ms.set_snapshot_points(&[3]);
        } else {
            ms.set_crash_trigger(Some(CrashTrigger::AfterMemOps(3)));
        }
        write_u64(&mut ms, 0, Addr(0), 7, 0);
        ms.after_op(0, true); // op 1
        ms.flush_line(LineAddr(0), 1, false, 0); // un-fenced: maybe-durable
        ms.after_op(1, true); // op 2
        write_u64(&mut ms, 0, Addr(64), 9, 2);
        ms.after_op(2, true); // op 3 — crash / snapshot here
        if !ms.crashed() {
            write_u64(&mut ms, 0, Addr(128), 11, 3);
            ms.after_op(3, true); // op 4 — only reached without a crash
        }
        if snapshot {
            let mut snaps = ms.take_snapshots();
            assert_eq!(snaps.len(), 1);
            assert_eq!(snaps[0].0, 3);
            snaps.pop().unwrap().1
        } else {
            ms.acknowledge_crash();
            ms.take_crash_census().expect("crash captured a census")
        }
    }

    #[test]
    fn snapshot_census_matches_crash_census_at_same_op() {
        let crashed = census_at_op_3(false);
        let snapped = census_at_op_3(true);
        assert_eq!(crashed.entries.len(), snapped.entries.len());
        for (a, b) in crashed.entries.iter().zip(snapped.entries.iter()) {
            assert_eq!(a.line, b.line);
            assert_eq!(a.data, b.data);
            assert_eq!(a.origin, b.origin);
        }
        for line in [0u64, 64, 128] {
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            crashed.base.peek_bytes(Addr(line), &mut a);
            snapped.base.peek_bytes(Addr(line), &mut b);
            assert_eq!(a, b, "floor image differs at byte {line}");
        }
    }

    #[test]
    fn snapshot_run_continues_past_the_point() {
        let mut ms = MemSystem::new(small_cfg());
        ms.set_adr_tracking(true);
        ms.set_snapshot_points(&[2, 2, 1]); // dedup + sort
        for i in 0..4u64 {
            write_u64(&mut ms, 0, Addr(i * 64), i, i);
            ms.after_op(i, true);
        }
        assert!(!ms.crashed(), "snapshots never crash the machine");
        assert_eq!(ms.mem_ops(), 4, "the run completed");
        let snaps = ms.take_snapshots();
        assert_eq!(snaps.iter().map(|(p, _)| *p).collect::<Vec<_>>(), [1, 2]);
        // Later snapshots see strictly more maybe-durable lines.
        assert!(snaps[0].1.entries.len() <= snaps[1].1.entries.len());
        assert!(ms.take_snapshots().is_empty(), "taking disarms");
    }

    #[test]
    fn candidate_tracking_records_marked_ops_only() {
        let mut ms = MemSystem::new(small_cfg());
        ms.set_candidate_tracking(true);
        ms.after_op(0, true); // op 1: store-like
        ms.after_op(1, false); // op 2: load-like
        ms.after_op(2, true); // op 3: flush-like
        assert_eq!(ms.take_crash_candidates(), vec![1, 3]);
        // Taking disarms: later ops are not recorded.
        ms.after_op(3, true);
        assert!(ms.take_crash_candidates().is_empty());
    }
}

//! Human-readable inspection of simulator state, for debugging recovery
//! code and understanding experiments: cache occupancy, dirty-line
//! inventories, and run-comparison summaries.

use crate::addr::LineAddr;
use crate::memsys::MemSystem;
use crate::stats::SimStats;

/// Occupancy and dirtiness of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Occupancy {
    /// Valid lines resident.
    pub resident: usize,
    /// Lines whose hierarchy copy differs from NVMM.
    pub dirty: usize,
}

/// A dirty line and where its freshest copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyLine {
    /// The line address.
    pub line: LineAddr,
    /// Core whose L1 holds the freshest (Modified) copy, if any; `None`
    /// means the dirty copy is in the L2.
    pub owner: Option<usize>,
    /// Cycle at which the line became dirty.
    pub dirty_since: u64,
}

/// Snapshot the L2's occupancy.
pub fn l2_occupancy(mem: &MemSystem) -> Occupancy {
    Occupancy {
        resident: mem.l2_resident(),
        dirty: mem.dirty_lines(),
    }
}

/// Inventory every dirty line in the hierarchy, oldest first — the data
/// a crash right now would lose.
pub fn dirty_inventory(mem: &MemSystem) -> Vec<DirtyLine> {
    let mut out = mem.collect_dirty_lines();
    out.sort_by_key(|d| (d.dirty_since, d.line.0));
    out
}

/// One-paragraph comparison of two runs (e.g. a scheme vs its baseline).
pub fn compare_runs(label_a: &str, a: &SimStats, label_b: &str, b: &SimStats) -> String {
    let (ca, cb) = (a.exec_cycles().max(1), b.exec_cycles().max(1));
    let (wa, wb) = (a.nvmm_writes().max(1), b.nvmm_writes().max(1));
    format!(
        "{label_b} vs {label_a}: time {:.3}x ({} vs {} cycles), writes {:.3}x ({} vs {}), \
         flushes {} vs {}, fences {} vs {}, maxvdur {} vs {}",
        cb as f64 / ca as f64,
        cb,
        ca,
        wb as f64 / wa as f64,
        b.nvmm_writes(),
        a.nvmm_writes(),
        b.core_totals().flushes,
        a.core_totals().flushes,
        b.core_totals().fences,
        a.core_totals().fences,
        b.mem.max_volatility,
        a.mem.max_volatility,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::machine::Machine;

    fn machine() -> Machine {
        Machine::new(
            MachineConfig::default()
                .with_cores(2)
                .with_nvmm_bytes(1 << 20),
        )
    }

    #[test]
    fn occupancy_tracks_stores() {
        let mut m = machine();
        let arr = m.alloc::<f64>(64).unwrap(); // 8 lines
        let before = l2_occupancy(m.mem());
        assert_eq!(before.resident, 0);
        {
            let mut ctx = m.ctx(0);
            for i in 0..64 {
                ctx.store(arr, i, 1.0);
            }
        }
        let after = l2_occupancy(m.mem());
        assert_eq!(after.resident, 8);
        assert_eq!(after.dirty, 8);
        m.drain_caches();
        let drained = l2_occupancy(m.mem());
        assert_eq!(drained.resident, 8, "drain keeps lines");
        assert_eq!(drained.dirty, 0, "drain cleans them");
    }

    #[test]
    fn dirty_inventory_oldest_first_and_owner_aware() {
        let mut m = machine();
        let arr = m.alloc::<u64>(32).unwrap();
        m.ctx(0).store(arr, 0, 1); // line 0, early
        m.ctx(1).store(arr, 8, 2); // line 1, later (core 1's clock is 0 too,
                                   // but dirty_since ties break by address)
        let inv = dirty_inventory(m.mem());
        assert_eq!(inv.len(), 2);
        assert!(inv[0].dirty_since <= inv[1].dirty_since);
        // Freshest copies are in the writers' L1s.
        assert_eq!(inv[0].owner, Some(0));
        assert_eq!(inv[1].owner, Some(1));
    }

    #[test]
    fn compare_runs_formats_ratios() {
        let mut m = machine();
        let arr = m.alloc::<u64>(16).unwrap();
        m.ctx(0).store(arr, 0, 1);
        let a = m.stats();
        m.ctx(0).clflushopt(arr.addr(0));
        m.ctx(0).sfence();
        let b = m.stats();
        let s = compare_runs("base", &a, "flushed", &b);
        assert!(s.contains("flushed vs base"));
        assert!(s.contains("flushes 1 vs 0"));
    }
}

/root/repo/target/release/deps/lp_kernels-69095b6227421cb2.d: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

/root/repo/target/release/deps/liblp_kernels-69095b6227421cb2.rlib: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

/root/repo/target/release/deps/liblp_kernels-69095b6227421cb2.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cholesky.rs:
crates/kernels/src/common.rs:
crates/kernels/src/conv2d.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/fft.rs:
crates/kernels/src/gauss.rs:
crates/kernels/src/native.rs:
crates/kernels/src/tmm.rs:

/root/repo/target/release/deps/lp_check-a4940a773f61de03.d: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

/root/repo/target/release/deps/liblp_check-a4940a773f61de03.rlib: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

/root/repo/target/release/deps/liblp_check-a4940a773f61de03.rmeta: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

crates/check/src/lib.rs:
crates/check/src/checker.rs:
crates/check/src/mutations.rs:
crates/check/src/report.rs:

/root/repo/target/release/deps/lp_core-111ca22f73e6e272.d: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs

/root/repo/target/release/deps/liblp_core-111ca22f73e6e272.rlib: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs

/root/repo/target/release/deps/liblp_core-111ca22f73e6e272.rmeta: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs

crates/core/src/lib.rs:
crates/core/src/checksum.rs:
crates/core/src/checksum/accuracy.rs:
crates/core/src/ep.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/table.rs:
crates/core/src/table/hashed.rs:
crates/core/src/track.rs:
crates/core/src/wal.rs:

/root/repo/target/release/deps/lp_check-86d4d4be3e70cda1.d: crates/check/src/main.rs

/root/repo/target/release/deps/lp_check-86d4d4be3e70cda1: crates/check/src/main.rs

crates/check/src/main.rs:

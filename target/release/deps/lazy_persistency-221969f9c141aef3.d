/root/repo/target/release/deps/lazy_persistency-221969f9c141aef3.d: src/lib.rs

/root/repo/target/release/deps/liblazy_persistency-221969f9c141aef3.rlib: src/lib.rs

/root/repo/target/release/deps/liblazy_persistency-221969f9c141aef3.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/examples/sensitivity-a73a565f7390eac9.d: examples/sensitivity.rs

/root/repo/target/debug/examples/sensitivity-a73a565f7390eac9: examples/sensitivity.rs

examples/sensitivity.rs:

/root/repo/target/debug/examples/quickstart-611a33161744407e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-611a33161744407e: examples/quickstart.rs

examples/quickstart.rs:

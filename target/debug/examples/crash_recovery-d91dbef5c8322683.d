/root/repo/target/debug/examples/crash_recovery-d91dbef5c8322683.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-d91dbef5c8322683: examples/crash_recovery.rs

examples/crash_recovery.rs:

/root/repo/target/debug/examples/sensitivity-742d3bb178cb36f0.d: examples/sensitivity.rs Cargo.toml

/root/repo/target/debug/examples/libsensitivity-742d3bb178cb36f0.rmeta: examples/sensitivity.rs Cargo.toml

examples/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/granularity-90ace54d299bd528.d: crates/bench/src/bin/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-90ace54d299bd528.rmeta: crates/bench/src/bin/granularity.rs Cargo.toml

crates/bench/src/bin/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/memory_model-5e693193cc67afa8.d: tests/memory_model.rs

/root/repo/target/debug/deps/memory_model-5e693193cc67afa8: tests/memory_model.rs

tests/memory_model.rs:

/root/repo/target/debug/deps/lp_bench-8861ed885a478efe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblp_bench-8861ed885a478efe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig14b-890ea441feaa65b6.d: crates/bench/src/bin/fig14b.rs

/root/repo/target/debug/deps/fig14b-890ea441feaa65b6: crates/bench/src/bin/fig14b.rs

crates/bench/src/bin/fig14b.rs:

/root/repo/target/debug/deps/fig10-91dcf2cb3c5224d6.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-91dcf2cb3c5224d6: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:

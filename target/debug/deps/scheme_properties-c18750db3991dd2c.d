/root/repo/target/debug/deps/scheme_properties-c18750db3991dd2c.d: tests/scheme_properties.rs

/root/repo/target/debug/deps/scheme_properties-c18750db3991dd2c: tests/scheme_properties.rs

tests/scheme_properties.rs:

/root/repo/target/debug/deps/maxvdur-ce10b12fefc7b150.d: crates/bench/src/bin/maxvdur.rs Cargo.toml

/root/repo/target/debug/deps/libmaxvdur-ce10b12fefc7b150.rmeta: crates/bench/src/bin/maxvdur.rs Cargo.toml

crates/bench/src/bin/maxvdur.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/check_properties-7afab10ec814650b.d: tests/check_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcheck_properties-7afab10ec814650b.rmeta: tests/check_properties.rs Cargo.toml

tests/check_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp-3379b6183f98ce9e.d: crates/bench/src/bin/lp.rs Cargo.toml

/root/repo/target/debug/deps/liblp-3379b6183f98ce9e.rmeta: crates/bench/src/bin/lp.rs Cargo.toml

crates/bench/src/bin/lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig15a-98d4af647736877f.d: crates/bench/src/bin/fig15a.rs

/root/repo/target/debug/deps/fig15a-98d4af647736877f: crates/bench/src/bin/fig15a.rs

crates/bench/src/bin/fig15a.rs:

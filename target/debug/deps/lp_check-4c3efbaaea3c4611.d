/root/repo/target/debug/deps/lp_check-4c3efbaaea3c4611.d: crates/check/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblp_check-4c3efbaaea3c4611.rmeta: crates/check/src/main.rs Cargo.toml

crates/check/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/cache-729a92d6a6490288.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-729a92d6a6490288.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_sim-8e065bc793d90742.d: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/cache.rs crates/sim/src/cleaner.rs crates/sim/src/config.rs crates/sim/src/core.rs crates/sim/src/debug.rs crates/sim/src/machine.rs crates/sim/src/mc.rs crates/sim/src/mem.rs crates/sim/src/memsys.rs crates/sim/src/observe.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/liblp_sim-8e065bc793d90742.rlib: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/cache.rs crates/sim/src/cleaner.rs crates/sim/src/config.rs crates/sim/src/core.rs crates/sim/src/debug.rs crates/sim/src/machine.rs crates/sim/src/mc.rs crates/sim/src/mem.rs crates/sim/src/memsys.rs crates/sim/src/observe.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/liblp_sim-8e065bc793d90742.rmeta: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/cache.rs crates/sim/src/cleaner.rs crates/sim/src/config.rs crates/sim/src/core.rs crates/sim/src/debug.rs crates/sim/src/machine.rs crates/sim/src/mc.rs crates/sim/src/mem.rs crates/sim/src/memsys.rs crates/sim/src/observe.rs crates/sim/src/rng.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/addr.rs:
crates/sim/src/cache.rs:
crates/sim/src/cleaner.rs:
crates/sim/src/config.rs:
crates/sim/src/core.rs:
crates/sim/src/debug.rs:
crates/sim/src/machine.rs:
crates/sim/src/mc.rs:
crates/sim/src/mem.rs:
crates/sim/src/memsys.rs:
crates/sim/src/observe.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:

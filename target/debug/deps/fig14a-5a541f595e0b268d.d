/root/repo/target/debug/deps/fig14a-5a541f595e0b268d.d: crates/bench/src/bin/fig14a.rs

/root/repo/target/debug/deps/fig14a-5a541f595e0b268d: crates/bench/src/bin/fig14a.rs

crates/bench/src/bin/fig14a.rs:

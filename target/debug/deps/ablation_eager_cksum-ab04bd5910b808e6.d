/root/repo/target/debug/deps/ablation_eager_cksum-ab04bd5910b808e6.d: crates/bench/src/bin/ablation_eager_cksum.rs

/root/repo/target/debug/deps/ablation_eager_cksum-ab04bd5910b808e6: crates/bench/src/bin/ablation_eager_cksum.rs

crates/bench/src/bin/ablation_eager_cksum.rs:

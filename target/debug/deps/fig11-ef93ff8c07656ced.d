/root/repo/target/debug/deps/fig11-ef93ff8c07656ced.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-ef93ff8c07656ced: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:

/root/repo/target/debug/deps/ablation_eager_cksum-10caccd9501147a7.d: crates/bench/src/bin/ablation_eager_cksum.rs Cargo.toml

/root/repo/target/debug/deps/libablation_eager_cksum-10caccd9501147a7.rmeta: crates/bench/src/bin/ablation_eager_cksum.rs Cargo.toml

crates/bench/src/bin/ablation_eager_cksum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crash_recovery_matrix-d58e263c036d9407.d: tests/crash_recovery_matrix.rs

/root/repo/target/debug/deps/crash_recovery_matrix-d58e263c036d9407: tests/crash_recovery_matrix.rs

tests/crash_recovery_matrix.rs:

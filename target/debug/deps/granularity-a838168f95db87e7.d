/root/repo/target/debug/deps/granularity-a838168f95db87e7.d: crates/bench/src/bin/granularity.rs Cargo.toml

/root/repo/target/debug/deps/libgranularity-a838168f95db87e7.rmeta: crates/bench/src/bin/granularity.rs Cargo.toml

crates/bench/src/bin/granularity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_bench-38303f0af56df675.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblp_bench-38303f0af56df675.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblp_bench-38303f0af56df675.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

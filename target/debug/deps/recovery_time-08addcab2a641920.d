/root/repo/target/debug/deps/recovery_time-08addcab2a641920.d: crates/bench/src/bin/recovery_time.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_time-08addcab2a641920.rmeta: crates/bench/src/bin/recovery_time.rs Cargo.toml

crates/bench/src/bin/recovery_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig15a-768019ecb193b603.d: crates/bench/src/bin/fig15a.rs Cargo.toml

/root/repo/target/debug/deps/libfig15a-768019ecb193b603.rmeta: crates/bench/src/bin/fig15a.rs Cargo.toml

crates/bench/src/bin/fig15a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

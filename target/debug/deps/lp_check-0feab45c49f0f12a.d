/root/repo/target/debug/deps/lp_check-0feab45c49f0f12a.d: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

/root/repo/target/debug/deps/lp_check-0feab45c49f0f12a: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

crates/check/src/lib.rs:
crates/check/src/checker.rs:
crates/check/src/mutations.rs:
crates/check/src/report.rs:

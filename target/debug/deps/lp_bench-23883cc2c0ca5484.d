/root/repo/target/debug/deps/lp_bench-23883cc2c0ca5484.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblp_bench-23883cc2c0ca5484.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_core-3bda4362bc63ca67.d: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs

/root/repo/target/debug/deps/lp_core-3bda4362bc63ca67: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs

crates/core/src/lib.rs:
crates/core/src/checksum.rs:
crates/core/src/checksum/accuracy.rs:
crates/core/src/ep.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/table.rs:
crates/core/src/table/hashed.rs:
crates/core/src/track.rs:
crates/core/src/wal.rs:

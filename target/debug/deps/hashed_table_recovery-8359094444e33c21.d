/root/repo/target/debug/deps/hashed_table_recovery-8359094444e33c21.d: tests/hashed_table_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libhashed_table_recovery-8359094444e33c21.rmeta: tests/hashed_table_recovery.rs Cargo.toml

tests/hashed_table_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

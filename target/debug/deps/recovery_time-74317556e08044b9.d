/root/repo/target/debug/deps/recovery_time-74317556e08044b9.d: crates/bench/src/bin/recovery_time.rs

/root/repo/target/debug/deps/recovery_time-74317556e08044b9: crates/bench/src/bin/recovery_time.rs

crates/bench/src/bin/recovery_time.rs:

/root/repo/target/debug/deps/fig12_13-a8b9fb497b5e5c4f.d: crates/bench/src/bin/fig12_13.rs

/root/repo/target/debug/deps/fig12_13-a8b9fb497b5e5c4f: crates/bench/src/bin/fig12_13.rs

crates/bench/src/bin/fig12_13.rs:

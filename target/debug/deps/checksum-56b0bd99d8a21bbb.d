/root/repo/target/debug/deps/checksum-56b0bd99d8a21bbb.d: crates/bench/benches/checksum.rs Cargo.toml

/root/repo/target/debug/deps/libchecksum-56b0bd99d8a21bbb.rmeta: crates/bench/benches/checksum.rs Cargo.toml

crates/bench/benches/checksum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

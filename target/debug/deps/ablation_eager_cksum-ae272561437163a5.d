/root/repo/target/debug/deps/ablation_eager_cksum-ae272561437163a5.d: crates/bench/src/bin/ablation_eager_cksum.rs Cargo.toml

/root/repo/target/debug/deps/libablation_eager_cksum-ae272561437163a5.rmeta: crates/bench/src/bin/ablation_eager_cksum.rs Cargo.toml

crates/bench/src/bin/ablation_eager_cksum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/crash_recovery_matrix-8e8b1ba2590bbc95.d: tests/crash_recovery_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_recovery_matrix-8e8b1ba2590bbc95.rmeta: tests/crash_recovery_matrix.rs Cargo.toml

tests/crash_recovery_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

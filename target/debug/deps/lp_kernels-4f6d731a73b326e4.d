/root/repo/target/debug/deps/lp_kernels-4f6d731a73b326e4.d: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

/root/repo/target/debug/deps/liblp_kernels-4f6d731a73b326e4.rlib: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

/root/repo/target/debug/deps/liblp_kernels-4f6d731a73b326e4.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs

crates/kernels/src/lib.rs:
crates/kernels/src/cholesky.rs:
crates/kernels/src/common.rs:
crates/kernels/src/conv2d.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/fft.rs:
crates/kernels/src/gauss.rs:
crates/kernels/src/native.rs:
crates/kernels/src/tmm.rs:

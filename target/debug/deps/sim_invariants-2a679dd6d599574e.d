/root/repo/target/debug/deps/sim_invariants-2a679dd6d599574e.d: tests/sim_invariants.rs

/root/repo/target/debug/deps/sim_invariants-2a679dd6d599574e: tests/sim_invariants.rs

tests/sim_invariants.rs:

/root/repo/target/debug/deps/lp_check-a7ce293decdce4ae.d: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

/root/repo/target/debug/deps/liblp_check-a7ce293decdce4ae.rlib: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

/root/repo/target/debug/deps/liblp_check-a7ce293decdce4ae.rmeta: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs

crates/check/src/lib.rs:
crates/check/src/checker.rs:
crates/check/src/mutations.rs:
crates/check/src/report.rs:

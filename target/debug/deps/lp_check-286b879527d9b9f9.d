/root/repo/target/debug/deps/lp_check-286b879527d9b9f9.d: crates/check/src/main.rs

/root/repo/target/debug/deps/lp_check-286b879527d9b9f9: crates/check/src/main.rs

crates/check/src/main.rs:

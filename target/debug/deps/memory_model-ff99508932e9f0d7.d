/root/repo/target/debug/deps/memory_model-ff99508932e9f0d7.d: tests/memory_model.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_model-ff99508932e9f0d7.rmeta: tests/memory_model.rs Cargo.toml

tests/memory_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

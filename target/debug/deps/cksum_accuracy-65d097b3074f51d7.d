/root/repo/target/debug/deps/cksum_accuracy-65d097b3074f51d7.d: crates/bench/src/bin/cksum_accuracy.rs

/root/repo/target/debug/deps/cksum_accuracy-65d097b3074f51d7: crates/bench/src/bin/cksum_accuracy.rs

crates/bench/src/bin/cksum_accuracy.rs:

/root/repo/target/debug/deps/scheme_properties-521a936a3caf3e9d.d: tests/scheme_properties.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_properties-521a936a3caf3e9d.rmeta: tests/scheme_properties.rs Cargo.toml

tests/scheme_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_properties-9259ac07fc9c899b.d: tests/lp_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblp_properties-9259ac07fc9c899b.rmeta: tests/lp_properties.rs Cargo.toml

tests/lp_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

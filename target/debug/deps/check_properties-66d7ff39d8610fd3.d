/root/repo/target/debug/deps/check_properties-66d7ff39d8610fd3.d: tests/check_properties.rs

/root/repo/target/debug/deps/check_properties-66d7ff39d8610fd3: tests/check_properties.rs

tests/check_properties.rs:

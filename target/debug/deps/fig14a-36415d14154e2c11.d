/root/repo/target/debug/deps/fig14a-36415d14154e2c11.d: crates/bench/src/bin/fig14a.rs Cargo.toml

/root/repo/target/debug/deps/libfig14a-36415d14154e2c11.rmeta: crates/bench/src/bin/fig14a.rs Cargo.toml

crates/bench/src/bin/fig14a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/table6-6a6cfcc487d833f4.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-6a6cfcc487d833f4: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:

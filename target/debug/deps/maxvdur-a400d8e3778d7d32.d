/root/repo/target/debug/deps/maxvdur-a400d8e3778d7d32.d: crates/bench/src/bin/maxvdur.rs Cargo.toml

/root/repo/target/debug/deps/libmaxvdur-a400d8e3778d7d32.rmeta: crates/bench/src/bin/maxvdur.rs Cargo.toml

crates/bench/src/bin/maxvdur.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

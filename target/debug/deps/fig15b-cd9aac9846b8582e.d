/root/repo/target/debug/deps/fig15b-cd9aac9846b8582e.d: crates/bench/src/bin/fig15b.rs Cargo.toml

/root/repo/target/debug/deps/libfig15b-cd9aac9846b8582e.rmeta: crates/bench/src/bin/fig15b.rs Cargo.toml

crates/bench/src/bin/fig15b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig12_13-90e8a0b7f1087a23.d: crates/bench/src/bin/fig12_13.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_13-90e8a0b7f1087a23.rmeta: crates/bench/src/bin/fig12_13.rs Cargo.toml

crates/bench/src/bin/fig12_13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

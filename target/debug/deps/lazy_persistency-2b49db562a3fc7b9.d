/root/repo/target/debug/deps/lazy_persistency-2b49db562a3fc7b9.d: src/lib.rs

/root/repo/target/debug/deps/liblazy_persistency-2b49db562a3fc7b9.rlib: src/lib.rs

/root/repo/target/debug/deps/liblazy_persistency-2b49db562a3fc7b9.rmeta: src/lib.rs

src/lib.rs:

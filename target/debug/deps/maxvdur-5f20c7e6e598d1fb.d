/root/repo/target/debug/deps/maxvdur-5f20c7e6e598d1fb.d: crates/bench/src/bin/maxvdur.rs

/root/repo/target/debug/deps/maxvdur-5f20c7e6e598d1fb: crates/bench/src/bin/maxvdur.rs

crates/bench/src/bin/maxvdur.rs:

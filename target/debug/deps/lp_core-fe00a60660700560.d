/root/repo/target/debug/deps/lp_core-fe00a60660700560.d: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs Cargo.toml

/root/repo/target/debug/deps/liblp_core-fe00a60660700560.rmeta: crates/core/src/lib.rs crates/core/src/checksum.rs crates/core/src/checksum/accuracy.rs crates/core/src/ep.rs crates/core/src/recovery.rs crates/core/src/scheme.rs crates/core/src/table.rs crates/core/src/table/hashed.rs crates/core/src/track.rs crates/core/src/wal.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checksum.rs:
crates/core/src/checksum/accuracy.rs:
crates/core/src/ep.rs:
crates/core/src/recovery.rs:
crates/core/src/scheme.rs:
crates/core/src/table.rs:
crates/core/src/table/hashed.rs:
crates/core/src/track.rs:
crates/core/src/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

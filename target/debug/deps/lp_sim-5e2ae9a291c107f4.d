/root/repo/target/debug/deps/lp_sim-5e2ae9a291c107f4.d: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/cache.rs crates/sim/src/cleaner.rs crates/sim/src/config.rs crates/sim/src/core.rs crates/sim/src/debug.rs crates/sim/src/machine.rs crates/sim/src/mc.rs crates/sim/src/mem.rs crates/sim/src/memsys.rs crates/sim/src/observe.rs crates/sim/src/rng.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/liblp_sim-5e2ae9a291c107f4.rmeta: crates/sim/src/lib.rs crates/sim/src/addr.rs crates/sim/src/cache.rs crates/sim/src/cleaner.rs crates/sim/src/config.rs crates/sim/src/core.rs crates/sim/src/debug.rs crates/sim/src/machine.rs crates/sim/src/mc.rs crates/sim/src/mem.rs crates/sim/src/memsys.rs crates/sim/src/observe.rs crates/sim/src/rng.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/addr.rs:
crates/sim/src/cache.rs:
crates/sim/src/cleaner.rs:
crates/sim/src/config.rs:
crates/sim/src/core.rs:
crates/sim/src/debug.rs:
crates/sim/src/machine.rs:
crates/sim/src/mc.rs:
crates/sim/src/mem.rs:
crates/sim/src/memsys.rs:
crates/sim/src/observe.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

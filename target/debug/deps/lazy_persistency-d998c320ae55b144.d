/root/repo/target/debug/deps/lazy_persistency-d998c320ae55b144.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblazy_persistency-d998c320ae55b144.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

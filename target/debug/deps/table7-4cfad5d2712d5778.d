/root/repo/target/debug/deps/table7-4cfad5d2712d5778.d: crates/bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-4cfad5d2712d5778: crates/bench/src/bin/table7.rs

crates/bench/src/bin/table7.rs:

/root/repo/target/debug/deps/fig14a-b0877c8ca7bb600a.d: crates/bench/src/bin/fig14a.rs Cargo.toml

/root/repo/target/debug/deps/libfig14a-b0877c8ca7bb600a.rmeta: crates/bench/src/bin/fig14a.rs Cargo.toml

crates/bench/src/bin/fig14a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/sim_invariants-16265256d8ab254b.d: tests/sim_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsim_invariants-16265256d8ab254b.rmeta: tests/sim_invariants.rs Cargo.toml

tests/sim_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

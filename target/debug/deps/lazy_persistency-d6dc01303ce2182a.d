/root/repo/target/debug/deps/lazy_persistency-d6dc01303ce2182a.d: src/lib.rs

/root/repo/target/debug/deps/lazy_persistency-d6dc01303ce2182a: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/schemes-3afe6c86d474a0ca.d: crates/bench/benches/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-3afe6c86d474a0ca.rmeta: crates/bench/benches/schemes.rs Cargo.toml

crates/bench/benches/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp-e362af13f9c58542.d: crates/bench/src/bin/lp.rs

/root/repo/target/debug/deps/lp-e362af13f9c58542: crates/bench/src/bin/lp.rs

crates/bench/src/bin/lp.rs:

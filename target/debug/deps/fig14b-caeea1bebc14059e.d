/root/repo/target/debug/deps/fig14b-caeea1bebc14059e.d: crates/bench/src/bin/fig14b.rs Cargo.toml

/root/repo/target/debug/deps/libfig14b-caeea1bebc14059e.rmeta: crates/bench/src/bin/fig14b.rs Cargo.toml

crates/bench/src/bin/fig14b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

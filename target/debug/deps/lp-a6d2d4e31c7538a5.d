/root/repo/target/debug/deps/lp-a6d2d4e31c7538a5.d: crates/bench/src/bin/lp.rs Cargo.toml

/root/repo/target/debug/deps/liblp-a6d2d4e31c7538a5.rmeta: crates/bench/src/bin/lp.rs Cargo.toml

crates/bench/src/bin/lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig15b-28110fa8bd0964a3.d: crates/bench/src/bin/fig15b.rs

/root/repo/target/debug/deps/fig15b-28110fa8bd0964a3: crates/bench/src/bin/fig15b.rs

crates/bench/src/bin/fig15b.rs:

/root/repo/target/debug/deps/cksum_accuracy-a00feb6e6b61464d.d: crates/bench/src/bin/cksum_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libcksum_accuracy-a00feb6e6b61464d.rmeta: crates/bench/src/bin/cksum_accuracy.rs Cargo.toml

crates/bench/src/bin/cksum_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_bench-03dd01338bd8517b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/lp_bench-03dd01338bd8517b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

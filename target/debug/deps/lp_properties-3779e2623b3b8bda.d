/root/repo/target/debug/deps/lp_properties-3779e2623b3b8bda.d: tests/lp_properties.rs

/root/repo/target/debug/deps/lp_properties-3779e2623b3b8bda: tests/lp_properties.rs

tests/lp_properties.rs:

/root/repo/target/debug/deps/hashed_table_recovery-2dfd6b1a007ef87a.d: tests/hashed_table_recovery.rs

/root/repo/target/debug/deps/hashed_table_recovery-2dfd6b1a007ef87a: tests/hashed_table_recovery.rs

tests/hashed_table_recovery.rs:

/root/repo/target/debug/deps/lp_kernels-7532d165194c3ada.d: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs Cargo.toml

/root/repo/target/debug/deps/liblp_kernels-7532d165194c3ada.rmeta: crates/kernels/src/lib.rs crates/kernels/src/cholesky.rs crates/kernels/src/common.rs crates/kernels/src/conv2d.rs crates/kernels/src/driver.rs crates/kernels/src/fft.rs crates/kernels/src/gauss.rs crates/kernels/src/native.rs crates/kernels/src/tmm.rs Cargo.toml

crates/kernels/src/lib.rs:
crates/kernels/src/cholesky.rs:
crates/kernels/src/common.rs:
crates/kernels/src/conv2d.rs:
crates/kernels/src/driver.rs:
crates/kernels/src/fft.rs:
crates/kernels/src/gauss.rs:
crates/kernels/src/native.rs:
crates/kernels/src/tmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

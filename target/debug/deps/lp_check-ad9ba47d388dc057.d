/root/repo/target/debug/deps/lp_check-ad9ba47d388dc057.d: crates/check/src/main.rs

/root/repo/target/debug/deps/lp_check-ad9ba47d388dc057: crates/check/src/main.rs

crates/check/src/main.rs:

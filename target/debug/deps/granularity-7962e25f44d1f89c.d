/root/repo/target/debug/deps/granularity-7962e25f44d1f89c.d: crates/bench/src/bin/granularity.rs

/root/repo/target/debug/deps/granularity-7962e25f44d1f89c: crates/bench/src/bin/granularity.rs

crates/bench/src/bin/granularity.rs:

/root/repo/target/debug/deps/fig15a-5053c89f95be54ee.d: crates/bench/src/bin/fig15a.rs Cargo.toml

/root/repo/target/debug/deps/libfig15a-5053c89f95be54ee.rmeta: crates/bench/src/bin/fig15a.rs Cargo.toml

crates/bench/src/bin/fig15a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/lp_check-4d1c43efa78da84e.d: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs Cargo.toml

/root/repo/target/debug/deps/liblp_check-4d1c43efa78da84e.rmeta: crates/check/src/lib.rs crates/check/src/checker.rs crates/check/src/mutations.rs crates/check/src/report.rs Cargo.toml

crates/check/src/lib.rs:
crates/check/src/checker.rs:
crates/check/src/mutations.rs:
crates/check/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

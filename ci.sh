#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests, and the persistency
# mutation suite. Run from the repo root before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== lp-check mutation suite =="
cargo run --release -q -p lp-check -- --mutations

echo "== lp-crashmc smoke: kernels recover on every sampled crash state (multi-threaded) =="
cargo run --release -q -p lp-crashmc -- --budget smoke --threads 8

echo "== lp-crashmc smoke: every discipline mutation is flagged (multi-threaded) =="
cargo run --release -q -p lp-crashmc -- --mutations --budget exhaustive --threads 8

echo "== lp-crashmc smoke: seeded fault campaign (torn+media+nested), deterministic across thread counts =="
cargo run --release -q -p lp-crashmc -- --budget smoke --faults torn,media,nested --seed 42 --threads 2 > /tmp/lp_faults_t2.txt
cargo run --release -q -p lp-crashmc -- --budget smoke --faults torn,media,nested --seed 42 --threads 4 > /tmp/lp_faults_t4.txt
cmp /tmp/lp_faults_t2.txt /tmp/lp_faults_t4.txt \
  || { echo "fault campaign reports differ across thread counts"; exit 1; }
rm -f /tmp/lp_faults_t2.txt /tmp/lp_faults_t4.txt

echo "== lp-crashmc smoke: every fault mutation is flagged =="
cargo run --release -q -p lp-crashmc -- --fault-mutations --threads 2

echo "== lp-lint: clean tree must have zero findings (S1-S6, W1-W4), within the wall-time budget =="
lint_t0=$(date +%s%N)
cargo run --release -q -p lp-lint -- --all
lint_ms=$(( ($(date +%s%N) - lint_t0) / 1000000 ))
echo "lp-lint --all wall time: ${lint_ms}ms (budget 2000ms)"
[ "$lint_ms" -le 2000 ] || { echo "lp-lint exceeded its 2s wall-time budget"; exit 1; }

echo "== lp-lint: differential vs the mutation rigs + efficiency fixtures (control clean) =="
cargo run --release -q -p lp-lint -- --differential

echo "== lp-lint: cost model vs measured flush/fence counters, all kernels x schemes =="
cargo run --release -q -p lp-lint -- --cost-check

echo "== perf baseline: refresh results/BENCH_7.json (warmup + median-of-3) =="
cargo run --release -q -p lp-bench --bin perf_baseline -- --quick > /dev/null

echo "ci.sh: all gates passed"

#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests, and the persistency
# mutation suite. Run from the repo root before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== lp-check mutation suite =="
cargo run --release -q -p lp-check -- --mutations

echo "== lp-crashmc smoke: kernels recover on every sampled crash state =="
cargo run --release -q -p lp-crashmc -- --budget smoke

echo "== lp-crashmc smoke: every discipline mutation is flagged =="
cargo run --release -q -p lp-crashmc -- --mutations --budget exhaustive

echo "ci.sh: all gates passed"

#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests, and the persistency
# mutation suite. Run from the repo root before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q --workspace

echo "== lp-check mutation suite =="
cargo run --release -q -p lp-check -- --mutations

echo "ci.sh: all gates passed"

#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests, and the persistency
# mutation suite. Run from the repo root before sending a PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== lp-check mutation suite (R8 parity-before-data rig included) =="
cargo run --release -q -p lp-check -- --mutations | tee /tmp/lp_check_muts.txt
grep -q "parity_before_data.*flagged" /tmp/lp_check_muts.txt \
  || { echo "R8 mutation rig (parity_before_data) missing or not flagged"; exit 1; }
rm -f /tmp/lp_check_muts.txt

echo "== lp-crashmc smoke: kernels recover on every sampled crash state (multi-threaded) =="
cargo run --release -q -p lp-crashmc -- --budget smoke --threads 8

echo "== lp-crashmc smoke: every discipline mutation is flagged (multi-threaded) =="
cargo run --release -q -p lp-crashmc -- --mutations --budget exhaustive --threads 8

echo "== lp-crashmc smoke: seeded fault campaign (torn+media+nested), deterministic across thread counts =="
cargo run --release -q -p lp-crashmc -- --budget smoke --faults torn,media,nested --seed 42 --threads 2 > /tmp/lp_faults_t2.txt
cargo run --release -q -p lp-crashmc -- --budget smoke --faults torn,media,nested --seed 42 --threads 4 > /tmp/lp_faults_t4.txt
cmp /tmp/lp_faults_t2.txt /tmp/lp_faults_t4.txt \
  || { echo "fault campaign reports differ across thread counts"; exit 1; }
rm -f /tmp/lp_faults_t2.txt /tmp/lp_faults_t4.txt

echo "== lp-crashmc smoke: LazyParity repair ladder (single-line poisons repair, bursts escalate, 0 corrupt) =="
# Exit status enforces 0 corrupt / 0 stuck; the grep-derived sum enforces
# that rung-1 parity repairs actually fired (the ladder is exercised, not
# bypassed), and the cmp that the report is byte-identical across thread
# counts.
cargo run --release -q -p lp-crashmc -- --budget smoke --scheme lazy-parity --faults media --seed 42 --threads 2 > /tmp/lp_par_media_t2.txt
cargo run --release -q -p lp-crashmc -- --budget smoke --scheme lazy-parity --faults media --seed 42 --threads 4 > /tmp/lp_par_media_t4.txt
cmp /tmp/lp_par_media_t2.txt /tmp/lp_par_media_t4.txt \
  || { echo "LazyParity media reports differ across thread counts"; exit 1; }
par_repairs=$(awk '{for(i=1;i<NF;i++) if($i=="repair") s+=$(i+1)} END{print s+0}' /tmp/lp_par_media_t2.txt)
[ "$par_repairs" -gt 0 ] \
  || { echo "LazyParity media campaign performed no rung-1 repairs"; exit 1; }
cargo run --release -q -p lp-crashmc -- --budget smoke --scheme lazy-parity --faults media-burst --seed 42 --threads 4 > /tmp/lp_par_burst.txt
par_escalations=$(awk '{for(i=1;i<NF;i++) if($i=="escalated") s+=$(i+1)} END{print s+0}' /tmp/lp_par_burst.txt)
[ "$par_escalations" -gt 0 ] \
  || { echo "LazyParity burst campaign never escalated past rung 1"; exit 1; }
rm -f /tmp/lp_par_media_t2.txt /tmp/lp_par_media_t4.txt /tmp/lp_par_burst.txt

echo "== lp-crashmc smoke: dedup on/off must not change the report, only the wall-clock =="
cargo run --release -q -p lp-crashmc -- --budget smoke --seed 42 --threads 4 --dedup on  > /tmp/lp_dedup_on.txt
cargo run --release -q -p lp-crashmc -- --budget smoke --seed 42 --threads 4 --dedup off > /tmp/lp_dedup_off.txt
cmp /tmp/lp_dedup_on.txt /tmp/lp_dedup_off.txt \
  || { echo "reports differ between --dedup on and --dedup off"; exit 1; }
rm -f /tmp/lp_dedup_on.txt /tmp/lp_dedup_off.txt

echo "== lp-crashmc smoke: thread scaling must not regress (threads-8 vs threads-1) =="
# The host may be a single-core container, so this gate cannot demand a
# speedup; it catches pathological serialization (a contended sink or a
# starved pool would push threads-8 well past threads-1). Slack: 1.5x.
scale_t0=$(date +%s%N)
cargo run --release -q -p lp-crashmc -- --budget smoke --seed 42 --threads 1 > /tmp/lp_scale_t1.txt
scale_t1_ms=$(( ($(date +%s%N) - scale_t0) / 1000000 ))
scale_t0=$(date +%s%N)
cargo run --release -q -p lp-crashmc -- --budget smoke --seed 42 --threads 8 > /tmp/lp_scale_t8.txt
scale_t8_ms=$(( ($(date +%s%N) - scale_t0) / 1000000 ))
echo "smoke wall: threads-1 ${scale_t1_ms}ms, threads-8 ${scale_t8_ms}ms"
[ $(( scale_t8_ms * 2 )) -le $(( scale_t1_ms * 3 )) ] \
  || { echo "threads-8 wall exceeds 1.5x threads-1: parallel engine is serializing"; exit 1; }
cmp /tmp/lp_scale_t1.txt /tmp/lp_scale_t8.txt \
  || { echo "reports differ between threads 1 and 8"; exit 1; }
rm -f /tmp/lp_scale_t1.txt /tmp/lp_scale_t8.txt

echo "== lp-crashmc smoke: every fault mutation is flagged =="
cargo run --release -q -p lp-crashmc -- --fault-mutations --threads 2

echo "== lp-lint: clean tree must have zero findings (S1-S7, W1-W4), within the wall-time budget =="
lint_t0=$(date +%s%N)
cargo run --release -q -p lp-lint -- --all
lint_ms=$(( ($(date +%s%N) - lint_t0) / 1000000 ))
echo "lp-lint --all wall time: ${lint_ms}ms (budget 2000ms)"
[ "$lint_ms" -le 2000 ] || { echo "lp-lint exceeded its 2s wall-time budget"; exit 1; }

echo "== lp-lint: differential vs the mutation rigs + efficiency fixtures (control clean, S7 twin included) =="
cargo run --release -q -p lp-lint -- --differential | tee /tmp/lp_lint_diff.txt
grep -q "parity_before_data.*S7" /tmp/lp_lint_diff.txt \
  || { echo "S7 fixture (parity_before_data) missing from the differential"; exit 1; }
rm -f /tmp/lp_lint_diff.txt

echo "== lp-lint: cost model vs measured flush/fence counters, all kernels x schemes =="
cargo run --release -q -p lp-lint -- --cost-check

echo "== perf baseline: refresh results/BENCH_10.json + regression + cycle-invariance check vs BENCH_9 =="
# --check compares fresh best-of-reps rates (units / wall_min — robust
# to scheduler noise on millisecond cells) against the stored BENCH_9
# baseline and exits nonzero past tolerance (best rate >= 0.5x baseline,
# 0.6x for the steadier single-threaded sim/ cells; speedup_vs_1 >=
# baseline - 0.5, skipped when host_cpus differ from the baseline host).
# It is also the cycle-invariance gate: the sim/ cells' sim_cycles and
# memops must match the stored baseline EXACTLY (the timing model is
# pinned; any drift is a semantic regression, not noise), and each sim
# cell must finish within its wall-time budget. The BENCH_10 refresh
# adds a sim/tmm/LP+par(crc32) cell (new vs BENCH_9 — informational this
# round, pinned from the next). JSON to stdout; check verdict to stderr.
cargo run --release -q -p lp-bench --bin perf_baseline -- --quick --check results/BENCH_9.json > /dev/null

echo "ci.sh: all gates passed"

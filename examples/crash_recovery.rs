//! Crash a tiled matrix multiplication mid-run, then recover it.
//!
//! Demonstrates the full Lazy Persistency story of Sections III-E and IV:
//! a power failure loses everything still in the caches; recovery scans
//! each output strip's checksums newest-first (Figure 9), finds the
//! durable frontier, and recomputes only what was lost — eagerly, so a
//! second crash during recovery is also survivable. Run with:
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use lp_core::scheme::Scheme;
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn main() {
    let params = TmmParams {
        n: 128,
        bsize: 16,
        threads: 4,
        kk_window: 4,
        seed: 7,
    };
    let mut machine = Machine::new(
        MachineConfig::default()
            .with_cores(params.threads)
            .with_nvmm_bytes(32 << 20),
    );
    let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).expect("setup");

    // Pull the plug after 200k memory operations — mid-computation.
    machine.set_crash_trigger(CrashTrigger::AfterMemOps(200_000));
    let outcome = machine.run(tmm.plans());
    assert_eq!(outcome, Outcome::Crashed);
    println!("crash: machine lost power mid-run; caches discarded");
    println!(
        "durable image is a mix of persisted and lost strips -> verify: {}",
        tmm.verify(&machine)
    );

    // Recover: reverse-kk checksum scan per strip + eager recomputation.
    machine.clear_crash_trigger();
    machine.take_stats();
    let rstats = tmm.recover(&mut machine);
    println!(
        "recovery: checked {} regions, {} inconsistent, recomputed {} ({} cycles)",
        rstats.regions_checked,
        rstats.regions_inconsistent,
        rstats.recomputed_regions,
        rstats.cycles
    );

    machine.drain_caches();
    let ok = tmm.verify(&machine);
    println!("output matches the golden product after recovery: {ok}");
    assert!(ok, "recovery must restore the exact result");
}

//! Mini sensitivity study through the public API: how Lazy Persistency's
//! and Eager Persistency's overheads respond to NVMM latency and L2 size
//! (the shape of Figures 14(a) and 15(a), at example scale). Run with:
//!
//! ```sh
//! cargo run --release --example sensitivity
//! ```

use lp_core::scheme::Scheme;
use lp_kernels::tmm::{self, TmmParams};
use lp_sim::config::MachineConfig;

fn overhead(x: u64, base: u64) -> String {
    format!("{:+.1}%", (x as f64 / base as f64 - 1.0) * 100.0)
}

fn main() {
    let params = TmmParams {
        n: 128,
        bsize: 16,
        threads: 4,
        kk_window: 4,
        seed: 3,
    };

    println!("NVMM latency sweep (read, write) — tmm overhead vs base:");
    println!("{:<16} {:>8} {:>8}", "latency", "LP", "EP");
    for (r, w) in [(60u64, 150u64), (100, 200), (150, 300)] {
        let cfg = MachineConfig::default()
            .with_nvmm_bytes(32 << 20)
            .with_nvmm_latency_ns(r, w);
        let base = tmm::run(&cfg, params, Scheme::Base);
        let lp = tmm::run(&cfg, params, Scheme::lazy_default());
        let ep = tmm::run(&cfg, params, Scheme::Eager);
        assert!(base.verified && lp.verified && ep.verified);
        println!(
            "{:<16} {:>8} {:>8}",
            format!("({r}, {w}) ns"),
            overhead(lp.cycles(), base.cycles()),
            overhead(ep.cycles(), base.cycles()),
        );
    }

    println!("\nL2 size sweep — tmm overhead vs base:");
    println!("{:<10} {:>8} {:>8}", "L2", "LP", "EP");
    for kb in [128usize, 256, 512] {
        let cfg = MachineConfig::default()
            .with_nvmm_bytes(32 << 20)
            .with_l2_bytes(kb * 1024);
        let base = tmm::run(&cfg, params, Scheme::Base);
        let lp = tmm::run(&cfg, params, Scheme::lazy_default());
        let ep = tmm::run(&cfg, params, Scheme::Eager);
        println!(
            "{:<10} {:>8} {:>8}",
            format!("{kb} KB"),
            overhead(lp.cycles(), base.cycles()),
            overhead(ep.cycles(), base.cycles()),
        );
    }
}

//! Quickstart: Lazy Persistency in ~60 lines.
//!
//! Mirrors Figure 8 of the paper: a tiled computation whose regions
//! checksum their stores into a persistent table, with no flushes, no
//! fences, and no logging. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lp_core::prelude::*;
use lp_sim::prelude::*;

fn main() {
    // A 2-core machine with the paper's Table II parameters.
    let mut machine = Machine::new(
        MachineConfig::default()
            .with_cores(2)
            .with_nvmm_bytes(16 << 20),
    );

    // Persistent data: out[i] = f(a[i], b[i]) over 4096 elements.
    let n = 4096;
    let a = machine.alloc::<f64>(n).unwrap();
    let b = machine.alloc::<f64>(n).unwrap();
    let out = machine.alloc::<f64>(n).unwrap();
    for i in 0..n {
        machine.poke(a, i, i as f64 * 0.5);
        machine.poke(b, i, 1.0 - i as f64 * 0.25);
    }

    // Lazy Persistency with the paper's default modular checksum.
    // 16 regions of 256 elements each; keys are collision-free.
    let regions = 16;
    let per = n / regions;
    let handles = SchemeHandles::alloc(&mut machine, Scheme::lazy_default(), regions, 2, 0)
        .expect("scheme setup");

    // Two threads, regions round-robin.
    let mut plans = machine.plans();
    for (t, plan) in plans.iter_mut().enumerate() {
        let tp = handles.thread(t);
        for r in (t..regions).step_by(2) {
            plan.region(move |ctx| {
                let mut rs = tp.begin(ctx, r);
                for i in r * per..(r + 1) * per {
                    let av: f64 = ctx.load(a, i);
                    let bv: f64 = ctx.load(b, i);
                    ctx.compute(4);
                    // The store folds into the region checksum; nothing
                    // is flushed — durability comes from natural eviction.
                    tp.store(ctx, &mut rs, out, i, av * bv + av);
                }
                // One lazy store of the checksum into the table.
                tp.commit(ctx, rs);
            });
        }
    }
    assert_eq!(machine.run(plans), Outcome::Completed);

    let stats = machine.stats();
    println!("completed: {}", stats.summary());
    println!(
        "flushes issued: {} (Lazy Persistency never flushes)",
        stats.core_totals().flushes
    );

    // Verify every region against its checksum, like recovery would.
    machine.drain_caches();
    let mut ctx = machine.ctx(0);
    let consistent = (0..regions).all(|r| {
        region_consistent(
            &mut ctx,
            &handles.table,
            r,
            ChecksumKind::Modular,
            out,
            r * per..(r + 1) * per,
        )
    });
    println!("all {regions} regions verify against their checksums: {consistent}");
    assert!(consistent);
}

//! Property-style tests (deterministic seed sweeps over [`Rng64`]) on the
//! core Lazy Persistency invariants: checksum detection,
//! crash-point-independent recovery, and region associativity.

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use lp_core::parity::{can_certify, try_mismatch_repair, try_poison_repair, RepairVerdict};
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_kernels::conv2d::{Conv2d, Conv2dParams};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::mem::PArray;
use lp_sim::prelude::CrashTrigger;
use lp_sim::rng::Rng64;

const KINDS: [ChecksumKind; 4] = [
    ChecksumKind::Parity,
    ChecksumKind::Modular,
    ChecksumKind::Adler32,
    ChecksumKind::ModularParity,
];

fn random_values(rng: &mut Rng64, max_len: usize, min_len: usize) -> Vec<u64> {
    let len = rng.range_inclusive(min_len, max_len);
    (0..len).map(|_| rng.next_u64()).collect()
}

/// Recomputing a checksum over the same value sequence always matches.
#[test]
fn checksum_deterministic() {
    for kind in KINDS {
        for seed in 0..16u64 {
            let mut rng = Rng64::new(0xdead_0000 + seed);
            let values = random_values(&mut rng, 128, 0);
            let mut a = RunningChecksum::new(kind);
            let mut b = RunningChecksum::new(kind);
            for &v in &values {
                a.update(v);
                b.update(v);
            }
            assert_eq!(a.value(), b.value(), "{kind} seed {seed}");
        }
    }
}

/// Dropping any single non-zero value to zero (a lost store over a fresh
/// output) is detected by every code.
#[test]
fn checksum_detects_lost_store() {
    for kind in KINDS {
        for seed in 0..16u64 {
            let mut rng = Rng64::new(0xbeef_0000 + seed);
            let mut values = random_values(&mut rng, 96, 1);
            for v in values.iter_mut() {
                *v = (*v).max(1); // non-zero so zeroing is a real corruption
            }
            let i = rng.below(values.len());
            let mut clean = RunningChecksum::new(kind);
            let mut lost = RunningChecksum::new(kind);
            for (k, &v) in values.iter().enumerate() {
                clean.update(v);
                lost.update(if k == i { 0 } else { v });
            }
            assert_ne!(
                clean.value(),
                lost.value(),
                "{kind} seed {seed}: lost store at {i} undetected"
            );
        }
    }
}

/// A single bit flip anywhere is detected by every code.
#[test]
fn checksum_detects_bit_flip() {
    for kind in KINDS {
        for seed in 0..16u64 {
            let mut rng = Rng64::new(0xf11b_0000 + seed);
            let values = random_values(&mut rng, 96, 1);
            let i = rng.below(values.len());
            let bit = rng.below(64);
            let mut clean = RunningChecksum::new(kind);
            let mut flipped = RunningChecksum::new(kind);
            for (k, &v) in values.iter().enumerate() {
                clean.update(v);
                flipped.update(if k == i { v ^ (1u64 << bit) } else { v });
            }
            assert_ne!(
                clean.value(),
                flipped.value(),
                "{kind} seed {seed}: bit {bit} flip at {i} undetected"
            );
        }
    }
}

/// tmm + LP recovers the exact golden product from ANY crash point.
#[test]
fn tmm_lp_recovery_from_arbitrary_crash() {
    let mut rng = Rng64::new(0x7711);
    for case in 0..12 {
        let ops = 1 + rng.below(40_000) as u64;
        let params = TmmParams::test_small();
        let mut machine = Machine::new(
            MachineConfig::default()
                .with_cores(params.threads)
                .with_nvmm_bytes(16 << 20),
        );
        let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
        if machine.run(tmm.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            tmm.recover(&mut machine);
        }
        machine.drain_caches();
        assert!(tmm.verify(&machine), "case {case}: crash at {ops} ops");
    }
}

/// conv2d (idempotent regions) recovers from any crash point too.
#[test]
fn conv2d_lp_recovery_from_arbitrary_crash() {
    let mut rng = Rng64::new(0xc0a2);
    for case in 0..12 {
        let ops = 1 + rng.below(20_000) as u64;
        let params = Conv2dParams::test_small();
        let mut machine = Machine::new(
            MachineConfig::default()
                .with_cores(params.threads)
                .with_nvmm_bytes(16 << 20),
        );
        let conv = Conv2d::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
        if machine.run(conv.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            conv.recover(&mut machine);
        }
        machine.drain_caches();
        assert!(conv.verify(&machine), "case {case}: crash at {ops} ops");
    }
}

/// Commit one LazyParity region of `values` (length a multiple of 8, so
/// every line is fully owned) and drain, leaving a durable image the
/// parity repair rungs can work against.
fn committed_parity_region(
    kind: ChecksumKind,
    values: &[f64],
) -> (Machine, SchemeHandles, PArray<f64>) {
    assert_eq!(values.len() % 8, 0, "regions must own whole lines");
    let mut m = Machine::new(
        MachineConfig::default()
            .with_cores(1)
            .with_nvmm_bytes(1 << 20),
    );
    let arr = m.alloc::<f64>(values.len()).unwrap();
    let h = SchemeHandles::alloc(&mut m, Scheme::LazyParity(kind), 4, 1, 0).unwrap();
    let tp = h.thread(0);
    {
        let mut ctx = m.ctx(0);
        let mut rs = tp.begin(&mut ctx, 1);
        for (i, &v) in values.iter().enumerate() {
            tp.store(&mut ctx, &mut rs, arr, i, v);
        }
        tp.commit(&mut ctx, rs);
    }
    m.drain_caches();
    (m, h, arr)
}

/// Rung-1 poison repair is a bit-identical reconstruction for ANY region
/// shape, ANY poisoned line, and EVERY checksum kind that can certify it
/// — and because the XOR lanes are checksum-independent, the repaired
/// images agree across kinds too.
#[test]
fn parity_poison_repair_bit_identical_for_any_line() {
    for seed in 0..8u64 {
        let mut rng = Rng64::new(0x9a71_0000 + seed);
        let lines = rng.range_inclusive(2, 6);
        let values: Vec<f64> = (0..lines * 8)
            .map(|_| f64::from_bits(rng.next_u64() >> 12 | 0x3ff0_0000_0000_0000))
            .collect();
        let target = rng.below(lines);
        let mut images: Vec<Vec<u64>> = Vec::new();
        for kind in ChecksumKind::ALL {
            if !can_certify(kind, values.len()) {
                continue;
            }
            let (mut m, h, arr) = committed_parity_region(kind, &values);
            let golden: Vec<u64> = (0..values.len())
                .map(|i| m.peek(arr, i).to_bits())
                .collect();
            m.mem_mut().poison_line(arr.addr(target * 8).line());
            let poisoned = m.mem_mut().poisoned_lines();
            let indices: Vec<usize> = (0..values.len()).collect();
            let v = {
                let mut ctx = m.ctx(0);
                try_poison_repair(
                    &mut ctx, &h.table, &h.parity, 1, kind, arr, &indices, &poisoned,
                )
            };
            assert_eq!(v, RepairVerdict::Repaired, "{kind} seed {seed}");
            assert!(!m.mem().has_poisoned_lines(), "{kind} seed {seed}");
            let after: Vec<u64> = (0..values.len())
                .map(|i| m.peek(arr, i).to_bits())
                .collect();
            assert_eq!(golden, after, "{kind} seed {seed}: not bit-identical");
            images.push(after);
        }
        assert!(images.len() >= 2, "seed {seed}: too few certifying kinds");
        assert!(
            images.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: reconstruction differed across checksum kinds"
        );
    }
}

/// A word-granular torn prefix — a crash that replayed only the first
/// `t` of a line's eight words from some other write — fails the region
/// audit, and rung-1 mismatch repair localizes the line and restores the
/// committed bytes exactly, for every tear width 1..=7.
#[test]
fn parity_mismatch_repair_fixes_word_granular_torn_prefixes() {
    let kind = ChecksumKind::Crc32;
    for seed in 0..4u64 {
        let mut rng = Rng64::new(0x70a2_0000 + seed);
        let lines = rng.range_inclusive(2, 5);
        let values: Vec<f64> = (0..lines * 8)
            .map(|_| f64::from_bits(rng.next_u64() >> 12 | 0x3ff0_0000_0000_0000))
            .collect();
        for torn_words in 1..8usize {
            let (mut m, h, arr) = committed_parity_region(kind, &values);
            let golden: Vec<u64> = (0..values.len())
                .map(|i| m.peek(arr, i).to_bits())
                .collect();
            let line = rng.below(lines);
            for w in 0..torn_words {
                let i = line * 8 + w;
                m.poke(arr, i, values[i] + 7.25); // the torn, uncommitted bits
            }
            let indices: Vec<usize> = (0..values.len()).collect();
            let repaired = {
                let mut ctx = m.ctx(0);
                try_mismatch_repair(&mut ctx, &h.table, &h.parity, 1, kind, arr, &indices)
            };
            assert!(repaired, "seed {seed}: {torn_words}-word tear not repaired");
            let after: Vec<u64> = (0..values.len())
                .map(|i| m.peek(arr, i).to_bits())
                .collect();
            assert_eq!(
                golden, after,
                "seed {seed}: {torn_words}-word tear repair not bit-identical"
            );
        }
    }
}

/// Region associativity (Section III-C): under LP, regions may persist in
/// any order. Shuffling which thread owns which strip (a different
/// persist/execution order) never changes the final durable output.
#[test]
fn tmm_output_independent_of_region_order() {
    for threads in 1usize..5 {
        let mut params = TmmParams::test_small();
        params.threads = threads;
        let cfg = MachineConfig::default()
            .with_cores(threads)
            .with_nvmm_bytes(16 << 20);
        let run = lp_kernels::tmm::run(&cfg, params, Scheme::lazy_default());
        assert!(run.verified, "threads={threads}");
    }
}

//! Property-based tests (proptest) on the core Lazy Persistency
//! invariants: checksum detection, crash-point-independent recovery, and
//! region associativity.

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use lp_core::scheme::Scheme;
use lp_kernels::conv2d::{Conv2d, Conv2dParams};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ChecksumKind> {
    prop_oneof![
        Just(ChecksumKind::Parity),
        Just(ChecksumKind::Modular),
        Just(ChecksumKind::Adler32),
        Just(ChecksumKind::ModularParity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recomputing a checksum over the same value sequence always matches.
    #[test]
    fn checksum_deterministic(kind in kind_strategy(), values in prop::collection::vec(any::<u64>(), 0..128)) {
        let mut a = RunningChecksum::new(kind);
        let mut b = RunningChecksum::new(kind);
        for &v in &values {
            a.update(v);
            b.update(v);
        }
        prop_assert_eq!(a.value(), b.value());
    }

    /// Dropping any single non-zero value to zero (a lost store over a
    /// fresh output) is detected by every code.
    #[test]
    fn checksum_detects_lost_store(
        kind in kind_strategy(),
        values in prop::collection::vec(1u64..u64::MAX, 1..96),
        idx in any::<prop::sample::Index>(),
    ) {
        let i = idx.index(values.len());
        let mut clean = RunningChecksum::new(kind);
        let mut lost = RunningChecksum::new(kind);
        for (k, &v) in values.iter().enumerate() {
            clean.update(v);
            lost.update(if k == i { 0 } else { v });
        }
        prop_assert_ne!(clean.value(), lost.value(), "lost store at {} undetected", i);
    }

    /// A single bit flip anywhere is detected by every code.
    #[test]
    fn checksum_detects_bit_flip(
        kind in kind_strategy(),
        values in prop::collection::vec(any::<u64>(), 1..96),
        idx in any::<prop::sample::Index>(),
        bit in 0u32..64,
    ) {
        let i = idx.index(values.len());
        let mut clean = RunningChecksum::new(kind);
        let mut flipped = RunningChecksum::new(kind);
        for (k, &v) in values.iter().enumerate() {
            clean.update(v);
            flipped.update(if k == i { v ^ (1u64 << bit) } else { v });
        }
        prop_assert_ne!(clean.value(), flipped.value());
    }
}

proptest! {
    // Full simulated crash/recovery runs are slower: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// tmm + LP recovers the exact golden product from ANY crash point.
    #[test]
    fn tmm_lp_recovery_from_arbitrary_crash(ops in 1u64..40_000) {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(
            MachineConfig::default()
                .with_cores(params.threads)
                .with_nvmm_bytes(16 << 20),
        );
        let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
        if machine.run(tmm.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            tmm.recover(&mut machine);
        }
        machine.drain_caches();
        prop_assert!(tmm.verify(&machine), "crash at {} ops", ops);
    }

    /// conv2d (idempotent regions) recovers from any crash point too.
    #[test]
    fn conv2d_lp_recovery_from_arbitrary_crash(ops in 1u64..20_000) {
        let params = Conv2dParams::test_small();
        let mut machine = Machine::new(
            MachineConfig::default()
                .with_cores(params.threads)
                .with_nvmm_bytes(16 << 20),
        );
        let conv = Conv2d::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
        if machine.run(conv.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            conv.recover(&mut machine);
        }
        machine.drain_caches();
        prop_assert!(conv.verify(&machine), "crash at {} ops", ops);
    }

    /// Region associativity (Section III-C): under LP, regions may persist
    /// in any order. Shuffling which thread owns which strip (a different
    /// persist/execution order) never changes the final durable output.
    #[test]
    fn tmm_output_independent_of_region_order(threads in 1usize..5) {
        let mut params = TmmParams::test_small();
        params.threads = threads;
        let cfg = MachineConfig::default()
            .with_cores(threads)
            .with_nvmm_bytes(16 << 20);
        let run = lp_kernels::tmm::run(&cfg, params, Scheme::lazy_default());
        prop_assert!(run.verified, "threads={}", threads);
    }
}

//! End-to-end use of the §IV *alternative* checksum-table design — the
//! smaller, collision-prone hash table — in a hand-rolled Lazy
//! Persistency loop with crash and recovery. Demonstrates that collisions
//! only ever cost extra recomputation (false negatives), never
//! correctness.

use lp_core::checksum::{ChecksumKind, RunningChecksum};
use lp_core::table::hashed::HashedChecksumTable;
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::mem::PArray;
use lp_sim::prelude::CrashTrigger;

const REGIONS: usize = 32;
const PER: usize = 64;
const KIND: ChecksumKind = ChecksumKind::Modular;

fn expected(region: usize, i: usize) -> f64 {
    (region * PER + i) as f64 * 1.5 - 7.0
}

struct Workload {
    out: PArray<f64>,
    table: HashedChecksumTable,
}

fn setup(machine: &mut Machine, slots: usize) -> Workload {
    let out = machine.alloc::<f64>(REGIONS * PER).unwrap();
    let table = HashedChecksumTable::alloc(machine, slots).unwrap();
    Workload { out, table }
}

fn plans(machine: &Machine, w: &Workload) -> Vec<lp_sim::machine::ThreadPlan<'static>> {
    let mut plans = machine.plans();
    let (out, table) = (w.out, w.table);
    for (t, plan) in plans.iter_mut().enumerate() {
        for r in (t..REGIONS).step_by(machine.cores()) {
            plan.region(move |ctx| {
                let mut ck = RunningChecksum::new(KIND);
                for i in 0..PER {
                    let v = expected(r, i);
                    ctx.store(out, r * PER + i, v);
                    ck.update(v.to_bits());
                    ctx.compute(KIND.cost_ops());
                }
                table.store(ctx, r, ck.value());
            });
        }
    }
    plans
}

/// Recovery: recompute any region whose (possibly evicted) table entry
/// does not match; persist repairs eagerly.
fn recover(machine: &mut Machine, w: &Workload) -> usize {
    let mut repaired = 0;
    let mut ctx = machine.ctx(0);
    for r in 0..REGIONS {
        let mut ck = RunningChecksum::new(KIND);
        for i in 0..PER {
            let v: f64 = ctx.load(w.out, r * PER + i);
            ck.update(v.to_bits());
        }
        if w.table.matches(&mut ctx, r, ck.value()) {
            continue;
        }
        let mut ck = RunningChecksum::new(KIND);
        for i in 0..PER {
            let v = expected(r, i);
            ctx.store(w.out, r * PER + i, v);
            ck.update(v.to_bits());
        }
        ctx.flush_range(w.out, r * PER, PER);
        ctx.sfence();
        w.table.store(&mut ctx, r, ck.value());
        repaired += 1;
    }
    repaired
}

fn verify(machine: &Machine, w: &Workload) -> bool {
    (0..REGIONS).all(|r| (0..PER).all(|i| machine.peek(w.out, r * PER + i) == expected(r, i)))
}

fn machine() -> Machine {
    Machine::new(
        MachineConfig::default()
            .with_cores(2)
            .with_nvmm_bytes(4 << 20),
    )
}

#[test]
fn clean_run_verifies_with_ample_slots() {
    let mut m = machine();
    let w = setup(&mut m, 64); // 2x the keys: few/no collisions
    let outcome = m.run(plans(&m, &w));
    assert_eq!(outcome, Outcome::Completed);
    m.drain_caches();
    let repaired = recover(&mut m, &w);
    assert_eq!(repaired, 0, "nothing to repair after a drained clean run");
    assert!(verify(&m, &w));
}

#[test]
fn collisions_force_recomputation_but_never_wrong_results() {
    let mut m = machine();
    let w = setup(&mut m, 8); // 32 keys -> 8 slots: heavy collisions
    assert_eq!(m.run(plans(&m, &w)), Outcome::Completed);
    m.drain_caches();
    let repaired = recover(&mut m, &w);
    // Evicted entries read as absent -> conservative recomputation.
    assert!(repaired > 0, "heavy collisions must cost recomputation");
    m.drain_caches();
    assert!(verify(&m, &w), "collisions may waste work, not correctness");
}

#[test]
fn crash_recovery_roundtrip_under_collisions() {
    for slots in [4usize, 16, 64] {
        for ops in [500u64, 3_000, 9_000] {
            let mut m = machine();
            let w = setup(&mut m, slots);
            m.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
            if m.run(plans(&m, &w)) == Outcome::Crashed {
                m.clear_crash_trigger();
            }
            recover(&mut m, &w);
            m.drain_caches();
            assert!(verify(&m, &w), "slots={slots} ops={ops}");
        }
    }
}

#[test]
fn hashed_table_is_much_smaller() {
    let mut m = machine();
    let w = setup(&mut m, 8);
    // 8 slots x 16 B = 128 B vs 32 keys x 8 B = 256 B collision-free.
    assert!(w.table.bytes() < 32 * 8);
}

//! Property test: every shipped kernel, run under every persistency scheme
//! at test scale, passes the lp-check sanitizer with zero violations and
//! verifies its output. This is the "no false positives" half of the
//! checker contract (the mutation suite in `lp-check` is the "no false
//! negatives" half).

use lp_check::{check_kernel, default_config, default_schemes};
use lp_core::checksum::ChecksumKind;
use lp_core::scheme::Scheme;
use lp_kernels::driver::{KernelId, Scale};

#[test]
fn all_kernels_are_clean_under_all_schemes() {
    let cfg = default_config();
    for kernel in KernelId::ALL {
        for scheme in default_schemes() {
            let run = check_kernel(kernel, Scale::Test, &cfg, scheme);
            assert!(
                run.report.is_clean(),
                "{} under {} reported violations:\n{}",
                kernel.name(),
                scheme.name(),
                run.report
            );
            assert!(
                run.verified,
                "{} under {} failed output verification",
                kernel.name(),
                scheme.name()
            );
            assert!(
                run.report.events_seen > 0,
                "{} under {} produced no events — observer not wired?",
                kernel.name(),
                scheme.name()
            );
        }
    }
}

#[test]
fn lazy_is_clean_for_every_checksum_kind() {
    let cfg = default_config();
    for kind in ChecksumKind::ALL {
        let run = check_kernel(KernelId::Tmm, Scale::Test, &cfg, Scheme::Lazy(kind));
        assert!(
            run.report.is_clean(),
            "tmm under Lazy({kind:?}) reported violations:\n{}",
            run.report
        );
        assert!(run.verified, "tmm under Lazy({kind:?}) failed verification");
    }
}

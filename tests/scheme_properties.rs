//! Cross-crate integration tests backing the paper's Table I: the
//! mechanism-level differences between Lazy and Eager Persistency.
//!
//! | Aspect            | Eager           | Lazy                |
//! |-------------------|-----------------|---------------------|
//! | CL flushes        | needed          | none                |
//! | Durable barriers  | needed          | none                |
//! | Logging           | needed (WAL)    | none                |
//! | Error detection   | log/marker      | software checksum   |
//! | Write amp         | high            | low (checksum only) |
//! | Exe overheads     | high            | low                 |
//! | Recovery          | cheap           | validate + recompute|

use lp_core::scheme::Scheme;
use lp_kernels::driver::{run_kernel, KernelId, Scale};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn cfg() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(32 << 20)
}

#[test]
fn lazy_uses_no_flushes_barriers_or_logs_on_any_kernel() {
    for kernel in KernelId::ALL {
        let run = run_kernel(kernel, Scale::Test, &cfg(), Scheme::lazy_default());
        assert!(run.verified, "{kernel}");
        let t = run.stats.core_totals();
        assert_eq!(t.flushes, 0, "{kernel}: LP must not flush");
        assert_eq!(t.writebacks_issued, 0, "{kernel}: LP must not clwb");
        assert_eq!(t.fences, 0, "{kernel}: LP must not fence");
        assert_eq!(
            t.fence_stall_cycles, 0,
            "{kernel}: LP must not stall on barriers"
        );
        assert_eq!(run.stats.mem.nvmm_writes_flush, 0, "{kernel}");
    }
}

#[test]
fn eager_flushes_and_fences_on_every_kernel() {
    for kernel in KernelId::ALL {
        let run = run_kernel(kernel, Scale::Test, &cfg(), Scheme::Eager);
        assert!(run.verified, "{kernel}");
        let t = run.stats.core_totals();
        assert!(t.flushes > 0, "{kernel}: EP must flush");
        assert!(t.fences > 0, "{kernel}: EP must fence");
    }
}

#[test]
fn write_amplification_ordering_lazy_below_eager_below_wal() {
    // tmm at a size where natural evictions occur (small caches).
    let params = TmmParams {
        n: 64,
        bsize: 8,
        threads: 2,
        kk_window: 4,
        seed: 5,
    };
    let small = cfg().with_l1_bytes(4 * 1024).with_l2_bytes(32 * 1024);
    let base = lp_kernels::tmm::run(&small, params, Scheme::Base);
    let lp = lp_kernels::tmm::run(&small, params, Scheme::lazy_default());
    let ep = lp_kernels::tmm::run(&small, params, Scheme::Eager);
    let wal = lp_kernels::tmm::run(&small, params, Scheme::Wal);
    assert!(base.verified && lp.verified && ep.verified && wal.verified);
    // LP within a few percent of base.
    let lp_amp = lp.writes() as f64 / base.writes() as f64;
    assert!(lp_amp < 1.10, "LP write amplification {lp_amp}");
    assert!(ep.writes() > lp.writes());
    assert!(wal.writes() > ep.writes(), "WAL logs double the traffic");
}

#[test]
fn lazy_relies_on_natural_evictions_for_durability() {
    // With caches big enough to hold everything, an LP run leaves the
    // output *volatile*; draining (or more execution) makes it durable.
    let params = TmmParams::test_small();
    let mut machine = Machine::new(cfg().with_cores(params.threads));
    let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
    assert_eq!(machine.run(tmm.plans()), Outcome::Completed);
    assert!(
        !tmm.verify(&machine),
        "nothing evicted yet: durable image incomplete"
    );
    machine.drain_caches();
    assert!(
        tmm.verify(&machine),
        "after writeback the image is complete"
    );
}

#[test]
fn eager_is_durable_without_any_drain() {
    let params = TmmParams::test_small();
    let mut machine = Machine::new(cfg().with_cores(params.threads));
    let tmm = Tmm::setup(&mut machine, params, Scheme::Eager).unwrap();
    assert_eq!(machine.run(tmm.plans()), Outcome::Completed);
    // Simulate instant power loss: EP's output must already be durable.
    machine.mem_mut().force_crash();
    machine.mem_mut().acknowledge_crash();
    assert!(tmm.verify(&machine), "EP output survives without a drain");
}

#[test]
fn volatility_duration_eager_short_lazy_like_base() {
    let params = TmmParams {
        n: 64,
        bsize: 8,
        threads: 2,
        kk_window: 4,
        seed: 9,
    };
    let small = cfg().with_l1_bytes(4 * 1024).with_l2_bytes(32 * 1024);
    let base = lp_kernels::tmm::run(&small, params, Scheme::Base);
    let lp = lp_kernels::tmm::run(&small, params, Scheme::lazy_default());
    let ep = lp_kernels::tmm::run(&small, params, Scheme::Eager);
    let (b, l, e) = (
        base.stats.mem.max_volatility,
        lp.stats.mem.max_volatility,
        ep.stats.mem.max_volatility,
    );
    assert!(e < b / 2, "eager flushing shortens volatility: {e} vs {b}");
    assert!(l >= b / 2, "LP volatility tracks base: {l} vs {b}");
}

#[test]
fn recovery_cost_is_where_lazy_pays() {
    // Crash both schemes at the same point; LP's recovery does checksum
    // validation + recomputation, EP's resumes from its durable marker.
    let params = TmmParams::test_small();
    let mut costs = Vec::new();
    for scheme in [Scheme::lazy_default(), Scheme::Eager] {
        let mut machine = Machine::new(cfg().with_cores(params.threads));
        let tmm = Tmm::setup(&mut machine, params, scheme).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(10_000));
        assert_eq!(machine.run(tmm.plans()), Outcome::Crashed);
        machine.clear_crash_trigger();
        machine.take_stats();
        let rstats = tmm.recover(&mut machine);
        machine.drain_caches();
        assert!(tmm.verify(&machine), "{scheme}");
        costs.push((scheme, rstats));
    }
    // Both recovered correctly; LP checked checksums (EP checked none).
    assert!(costs[0].1.regions_checked > 0, "LP validates checksums");
}

//! The central correctness claim, exercised exhaustively: for every
//! kernel, every scheme with recovery, and a sweep of crash points, a
//! crashed run followed by recovery produces exactly the golden output.

use lp_core::scheme::Scheme;
use lp_kernels::cholesky::{Cholesky, CholeskyParams};
use lp_kernels::conv2d::{Conv2d, Conv2dParams};
use lp_kernels::fft::{Fft, FftParams};
use lp_kernels::gauss::{Gauss, GaussParams};
use lp_kernels::tmm::{Tmm, TmmParams};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn cfg(threads: usize) -> MachineConfig {
    MachineConfig::default()
        .with_cores(threads)
        .with_nvmm_bytes(32 << 20)
}

/// Crash points chosen to land in different phases of the tiny runs:
/// setup-adjacent, early, mid, late.
const CRASH_OPS: [u64; 4] = [37, 777, 4_321, 12_345];

fn schemes() -> [Scheme; 5] {
    [
        Scheme::lazy_default(),
        Scheme::Lazy(lp_core::checksum::ChecksumKind::Crc32),
        Scheme::LazyEagerCk(lp_core::checksum::ChecksumKind::Modular),
        Scheme::Eager,
        Scheme::Wal,
    ]
}

macro_rules! crash_matrix {
    ($name:ident, $ty:ident, $params:expr) => {
        #[test]
        fn $name() {
            for scheme in schemes() {
                for ops in CRASH_OPS {
                    let params = $params;
                    let mut machine = Machine::new(cfg(params.threads));
                    let work = $ty::setup(&mut machine, params, scheme).unwrap();
                    machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
                    let outcome = machine.run(work.plans());
                    if outcome == Outcome::Completed {
                        // Crash point beyond the run: nothing to recover.
                        machine.drain_caches();
                        assert!(work.verify(&machine), "{scheme} clean run at {ops}");
                        continue;
                    }
                    machine.clear_crash_trigger();
                    machine.take_stats();
                    work.recover(&mut machine);
                    machine.drain_caches();
                    assert!(
                        work.verify(&machine),
                        "{scheme}: wrong output after crash at {ops} ops"
                    );
                }
            }
        }
    };
}

crash_matrix!(
    tmm_recovers_from_any_crash_point,
    Tmm,
    TmmParams::test_small()
);
crash_matrix!(
    conv2d_recovers_from_any_crash_point,
    Conv2d,
    Conv2dParams::test_small()
);
crash_matrix!(
    gauss_recovers_from_any_crash_point,
    Gauss,
    GaussParams::test_small()
);
crash_matrix!(
    cholesky_recovers_from_any_crash_point,
    Cholesky,
    CholeskyParams::test_small()
);
crash_matrix!(
    fft_recovers_from_any_crash_point,
    Fft,
    FftParams::test_small()
);

#[test]
fn tmm_recovers_under_write_triggered_crashes_with_tiny_caches() {
    // Tiny caches force early natural evictions, creating the partial-
    // persistence states (R2/R3/R4 of Figure 6) recovery must untangle.
    let params = TmmParams::test_small();
    for writes in [1u64, 5, 25, 120] {
        let mut machine = Machine::new(
            cfg(params.threads)
                .with_l1_bytes(2 * 1024)
                .with_l2_bytes(8 * 1024),
        );
        let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterNvmmWrites(writes));
        if machine.run(tmm.plans()) == Outcome::Crashed {
            machine.clear_crash_trigger();
            tmm.recover(&mut machine);
        }
        machine.drain_caches();
        assert!(tmm.verify(&machine), "crash at {writes} writes");
    }
}

#[test]
fn double_crash_during_recovery_still_converges() {
    for scheme in schemes() {
        let params = TmmParams::test_small();
        let mut machine = Machine::new(cfg(params.threads));
        let tmm = Tmm::setup(&mut machine, params, scheme).unwrap();
        machine.set_crash_trigger(CrashTrigger::AfterMemOps(5_000));
        assert_eq!(machine.run(tmm.plans()), Outcome::Crashed, "{scheme}");
        // First recovery attempt is itself interrupted.
        let ops = machine.mem().mem_ops();
        machine
            .mem_mut()
            .set_crash_trigger(Some(CrashTrigger::AfterMemOps(ops + 3_000)));
        let _ = tmm.recover(&mut machine);
        assert!(machine.mem().crashed(), "{scheme}: second crash fired");
        machine.mem_mut().acknowledge_crash();
        // Second recovery finishes the job.
        tmm.recover(&mut machine);
        machine.drain_caches();
        assert!(
            tmm.verify(&machine),
            "{scheme}: converged after double crash"
        );
    }
}

#[test]
fn recovery_is_idempotent() {
    let params = TmmParams::test_small();
    let mut machine = Machine::new(cfg(params.threads));
    let tmm = Tmm::setup(&mut machine, params, Scheme::lazy_default()).unwrap();
    machine.set_crash_trigger(CrashTrigger::AfterMemOps(8_000));
    assert_eq!(machine.run(tmm.plans()), Outcome::Crashed);
    machine.clear_crash_trigger();
    tmm.recover(&mut machine);
    // Running recovery again finds nothing to repair.
    let again = tmm.recover(&mut machine);
    assert_eq!(again.recomputed_regions, 0, "second pass must be a no-op");
    machine.drain_caches();
    assert!(tmm.verify(&machine));
}

#[test]
fn crash_after_completion_loses_nothing_under_eager_and_wal() {
    for scheme in [Scheme::Eager, Scheme::Wal] {
        let params = Conv2dParams::test_small();
        let mut machine = Machine::new(cfg(params.threads));
        let conv = Conv2d::setup(&mut machine, params, scheme).unwrap();
        assert_eq!(machine.run(conv.plans()), Outcome::Completed);
        machine.mem_mut().force_crash();
        machine.mem_mut().acknowledge_crash();
        assert!(conv.verify(&machine), "{scheme}: durable at completion");
    }
}

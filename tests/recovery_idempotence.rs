//! Recovery idempotence, the property the nested-crash fault campaign
//! leans on: running a scheme's recovery twice — or crashing it mid-way
//! and resuming from scratch — must land on exactly the bytes a single
//! uninterrupted recovery produces. Kernel setup is deterministic, so
//! three machines prepared alike and crashed at the same memop reach the
//! same durable image; each then recovers under a different regimen and
//! the protected-range bytes are compared bit for bit.

use lp_core::scheme::Scheme;
use lp_kernels::driver::{prepare_kernel, KernelId, PreparedKernel, Scale};
use lp_sim::addr::{LineAddr, LINE_BYTES};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::prelude::CrashTrigger;

fn cfg() -> MachineConfig {
    MachineConfig::default().with_nvmm_bytes(4 << 20)
}

fn schemes() -> [Scheme; 4] {
    [
        Scheme::lazy_default(),
        Scheme::lazy_parity_default(),
        Scheme::Eager,
        Scheme::Wal,
    ]
}

/// Forward-run crash points (memops); points beyond a kernel's run are
/// skipped. Offsets (memops into recovery) for the truncated regimen.
const CRASH_OPS: [u64; 3] = [37, 501, 1203];
const TRUNCATE_OFFSETS: [u64; 2] = [29, 311];

/// The durable bytes of the kernel's protected output lines.
fn protected_bytes(m: &Machine, lines: &[LineAddr]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.len() * LINE_BYTES);
    let mut buf = [0u8; LINE_BYTES];
    for &l in lines {
        m.mem().nvmm().read_line(l, &mut buf);
        out.extend_from_slice(&buf);
    }
    out
}

/// Prepare one instance and run it to the crash point. `None` when the
/// run completes before the trigger fires.
fn crashed_instance(kernel: KernelId, scheme: Scheme, ops: u64) -> Option<PreparedKernel> {
    let mut pk = prepare_kernel(kernel, Scale::Micro, &cfg(), scheme);
    pk.machine.set_crash_trigger(CrashTrigger::AfterMemOps(ops));
    let plans = std::mem::take(&mut pk.plans);
    match pk.machine.run(plans) {
        Outcome::Crashed => {
            pk.machine.clear_crash_trigger();
            Some(pk)
        }
        Outcome::Completed => None,
    }
}

#[test]
fn recovery_is_idempotent_and_resumable() {
    for kernel in KernelId::ALL {
        for scheme in schemes() {
            for ops in CRASH_OPS {
                // Regimen A: one uninterrupted recovery.
                let Some(mut once) = crashed_instance(kernel, scheme, ops) else {
                    continue;
                };
                (once.recover)(&mut once.machine);
                once.machine.drain_caches();
                assert!(
                    (once.verify)(&once.machine),
                    "{kernel:?}/{scheme}: single recovery wrong at crash {ops}"
                );
                let golden = protected_bytes(&once.machine, &once.poison_lines);

                // Regimen B: the same recovery run twice back to back.
                let mut twice = crashed_instance(kernel, scheme, ops).expect("same trace");
                (twice.recover)(&mut twice.machine);
                (twice.recover)(&mut twice.machine);
                twice.machine.drain_caches();
                assert!(
                    (twice.verify)(&twice.machine),
                    "{kernel:?}/{scheme}: double recovery wrong at crash {ops}"
                );
                assert_eq!(
                    golden,
                    protected_bytes(&twice.machine, &twice.poison_lines),
                    "{kernel:?}/{scheme}: recover-twice diverged at crash {ops}"
                );

                // Regimen C: recovery truncated by a nested crash, then
                // resumed from scratch (the campaign's retry path).
                for off in TRUNCATE_OFFSETS {
                    let mut resumed = crashed_instance(kernel, scheme, ops).expect("same trace");
                    let at = resumed.machine.mem().mem_ops() + off;
                    resumed
                        .machine
                        .set_crash_trigger(CrashTrigger::AfterMemOps(at));
                    (resumed.recover)(&mut resumed.machine);
                    if resumed.machine.mem().crashed() {
                        resumed.machine.mem_mut().acknowledge_crash();
                    } else {
                        resumed.machine.clear_crash_trigger();
                    }
                    (resumed.recover)(&mut resumed.machine);
                    resumed.machine.drain_caches();
                    assert!(
                        (resumed.verify)(&resumed.machine),
                        "{kernel:?}/{scheme}: truncated recovery (crash {ops}, +{off}) wrong"
                    );
                    assert_eq!(
                        golden,
                        protected_bytes(&resumed.machine, &resumed.poison_lines),
                        "{kernel:?}/{scheme}: truncate-then-resume (crash {ops}, +{off}) \
                         diverged from a single recovery"
                    );
                }
            }
        }
    }
}

/// The repair ladder's analogue of the regimen-B test: after a media
/// poison is fixed (rung-1 parity reconstruction, or an escalation to
/// recompute when the region cannot certify in place), a second recovery
/// over the repaired image must find nothing left to do and land on the
/// same bytes.
#[test]
fn repair_recovery_is_idempotent_after_media_poison() {
    let scheme = Scheme::lazy_parity_default();
    let mut total_repaired = 0u64;
    for kernel in KernelId::ALL {
        // A completed run whose durable image then takes a single-line
        // media fault — every region is committed, so this is the purest
        // rung-1 case.
        let poisoned = |recoveries: usize| {
            let mut pk = prepare_kernel(kernel, Scale::Micro, &cfg(), scheme);
            let plans = std::mem::take(&mut pk.plans);
            assert_eq!(pk.machine.run(plans), Outcome::Completed);
            pk.machine.drain_caches();
            let line = pk.poison_lines[pk.poison_lines.len() / 2];
            pk.machine.mem_mut().poison_line(line);
            let mut last = (pk.recover)(&mut pk.machine);
            for _ in 1..recoveries {
                last = (pk.recover)(&mut pk.machine);
            }
            pk.machine.drain_caches();
            (pk, last)
        };

        let (once, first) = poisoned(1);
        assert!(
            (once.verify)(&once.machine),
            "{kernel:?}: recovery after a media poison produced wrong bytes"
        );
        // A rung-1 repair fixes the line without rebuilding the region,
        // so regions_quarantined stays 0 on that path; only the fallback
        // recompute counts as a quarantine rebuild.
        assert!(
            first.repaired_lines + first.recomputed_regions >= 1,
            "{kernel:?}: poison fixed by neither repair nor recompute: {first:?}"
        );
        total_repaired += first.repaired_lines;
        let golden = protected_bytes(&once.machine, &once.poison_lines);

        let (twice, second) = poisoned(2);
        assert!(
            (twice.verify)(&twice.machine),
            "{kernel:?}: recover-twice after a media poison produced wrong bytes"
        );
        assert_eq!(
            second.repaired_lines, 0,
            "{kernel:?}: second recovery re-repaired an already-fixed line"
        );
        assert_eq!(
            second.recomputed_regions, 0,
            "{kernel:?}: second recovery recomputed over a repaired image"
        );
        assert!(
            twice.machine.mem().nvmm().poisoned_lines().is_empty(),
            "{kernel:?}: poison survived two recoveries"
        );
        assert_eq!(
            golden,
            protected_bytes(&twice.machine, &twice.poison_lines),
            "{kernel:?}: recover-twice-after-repair diverged from a single recovery"
        );
    }
    assert!(
        total_repaired > 0,
        "no kernel exercised rung-1 parity repair; the ladder's first rung is untested"
    );
}

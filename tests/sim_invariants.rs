//! Integration tests for the simulator substrate's durability semantics:
//! what a crash keeps, what a drain guarantees, what the cleaner bounds.

use lp_sim::cleaner::CleanerConfig;
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};
use lp_sim::rng::Rng64;

fn machine(cores: usize) -> Machine {
    Machine::new(
        MachineConfig::default()
            .with_cores(cores)
            .with_nvmm_bytes(8 << 20),
    )
}

#[test]
fn drain_makes_coherent_and_durable_views_agree() {
    let mut m = machine(2);
    let arr = m.alloc::<f64>(2048).unwrap();
    let mut plans = m.plans();
    for (t, plan) in plans.iter_mut().enumerate() {
        plan.region(move |ctx| {
            for i in (t * 1024)..((t + 1) * 1024) {
                ctx.store(arr, i, (i as f64).sin());
            }
        });
    }
    assert_eq!(m.run(plans), Outcome::Completed);
    m.drain_caches();
    for i in 0..2048 {
        assert_eq!(m.peek(arr, i), m.peek_coherent(arr, i), "element {i}");
        assert_eq!(m.peek(arr, i), (i as f64).sin());
    }
}

#[test]
fn crash_preserves_exactly_the_written_back_prefix_semantics() {
    // Everything observable in the durable image after a crash must be a
    // value that was actually stored (never garbage), and flushed values
    // must always survive.
    let mut m = machine(1);
    let arr = m.alloc::<u64>(512).unwrap();
    {
        let mut ctx = m.ctx(0);
        for i in 0..512 {
            ctx.store(arr, i, i as u64 + 1);
        }
        // Explicitly persist a scattering of lines.
        for i in (0..512).step_by(64) {
            ctx.clflushopt(arr.addr(i));
        }
        ctx.sfence();
    }
    m.mem_mut().force_crash();
    m.mem_mut().acknowledge_crash();
    for i in 0..512 {
        let v = m.peek(arr, i);
        assert!(v == 0 || v == i as u64 + 1, "element {i} = {v} is garbage");
        if i % 64 == 0 {
            // Flushed lines cover elements i..i+8.
            assert_eq!(v, i as u64 + 1, "flushed element {i} lost");
        }
    }
}

#[test]
fn cleaner_bounds_dirty_lifetime() {
    // With a periodic cleaner, no volatility sample may (materially)
    // exceed the cleaning interval.
    let interval = 50_000u64;
    let mut m = Machine::new(
        MachineConfig::default()
            .with_cores(1)
            .with_nvmm_bytes(8 << 20)
            .with_cleaner(CleanerConfig::every_cycles(interval)),
    );
    let arr = m.alloc::<f64>(4096).unwrap();
    let mut plans = m.plans();
    plans[0].region(move |ctx| {
        for round in 0..8 {
            for i in 0..4096 {
                ctx.store(arr, i, (round * 4096 + i) as f64);
                ctx.compute(20);
            }
        }
    });
    assert_eq!(m.run(plans), Outcome::Completed);
    m.drain_caches();
    let stats = m.stats();
    assert!(stats.mem.nvmm_writes_cleaner > 0, "cleaner ran");
    assert!(
        stats.mem.max_volatility <= 2 * interval,
        "maxvdur {} exceeds twice the cleaning interval {}",
        stats.mem.max_volatility,
        interval
    );
    assert!(m.mem().cleaner_sweeps() > 0);
}

#[test]
fn cleaner_increases_writes_monotonically_with_frequency() {
    let mut writes = Vec::new();
    for interval in [10_000u64, 100_000, 1_000_000] {
        let mut m = Machine::new(
            MachineConfig::default()
                .with_cores(1)
                .with_nvmm_bytes(8 << 20)
                .with_cleaner(CleanerConfig::every_cycles(interval)),
        );
        let arr = m.alloc::<f64>(4096).unwrap();
        let mut plans = m.plans();
        plans[0].region(move |ctx| {
            for round in 0..4 {
                for i in 0..4096 {
                    ctx.store(arr, i, (round * 4096 + i) as f64);
                    ctx.compute(30);
                }
            }
        });
        m.run(plans);
        writes.push(m.stats().nvmm_writes());
    }
    assert!(
        writes[0] >= writes[1] && writes[1] >= writes[2],
        "more frequent cleaning must not reduce writes: {writes:?}"
    );
}

#[test]
fn coherence_keeps_values_exact_under_heavy_sharing() {
    // Interleaved cross-core read-modify-writes to adjacent elements
    // (false sharing) must still produce exact values.
    let mut m = machine(4);
    let arr = m.alloc::<u64>(64).unwrap();
    // Each core increments its own element 100 times; elements share lines.
    let mut plans = m.plans();
    for (t, plan) in plans.iter_mut().enumerate() {
        for _round in 0..100 {
            plan.region(move |ctx| {
                let v: u64 = ctx.load(arr, t);
                ctx.store(arr, t, v + 1);
            });
        }
    }
    assert_eq!(m.run(plans), Outcome::Completed);
    m.drain_caches();
    for t in 0..4 {
        assert_eq!(m.peek(arr, t), 100, "core {t}'s counter");
    }
    let s = m.stats();
    assert!(s.mem.coherence_invalidations > 0 || s.mem.coherence_recalls > 0);
}

/// Functional correctness is independent of cache geometry: any legal
/// L1/L2 size produces the same durable values after a drain.
#[test]
fn geometry_independence() {
    for l1_kb in 1usize..9 {
        for l2_kb in 2usize..17 {
            let l1 = (1 << l1_kb).min(64) * 1024;
            let l2 = (1 << l2_kb).max(8) * 1024;
            let cfg = MachineConfig::default()
                .with_cores(2)
                .with_l1_bytes(l1)
                .with_l2_bytes(l2.max(l1))
                .with_nvmm_bytes(8 << 20);
            if cfg.validate().is_err() {
                continue;
            }
            let mut m = Machine::new(cfg);
            let arr = m.alloc::<u64>(1024).unwrap();
            let mut plans = m.plans();
            for (t, plan) in plans.iter_mut().enumerate() {
                plan.region(move |ctx| {
                    for i in (t * 512)..((t + 1) * 512) {
                        ctx.store(arr, i, (i as u64).wrapping_mul(2654435761));
                    }
                });
            }
            m.run(plans);
            m.drain_caches();
            for i in 0..1024 {
                assert_eq!(
                    m.peek(arr, i),
                    (i as u64).wrapping_mul(2654435761),
                    "l1={l1} l2={l2} element {i}"
                );
            }
        }
    }
}

/// Poke/peek round-trips bit patterns exactly through the image.
#[test]
fn poke_peek_bit_exact() {
    for seed in 0..32u64 {
        let mut m = machine(1);
        let arr = m.alloc::<f64>(64).unwrap();
        let mut rng = Rng64::new(0x9e37_0000 + seed);
        let vals: Vec<f64> = (0..64).map(|_| f64::from_bits(rng.next_u64())).collect();
        for (i, &v) in vals.iter().enumerate() {
            m.poke(arr, i, v);
        }
        for (i, &v) in vals.iter().enumerate() {
            let got = m.peek(arr, i);
            assert_eq!(got.to_bits(), v.to_bits(), "seed {seed} element {i}");
        }
    }
}

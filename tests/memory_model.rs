//! Golden-model tests for the simulator's memory semantics: random
//! operation sequences (deterministic [`Rng64`] seed sweep) on random
//! cache geometries, checked against a simple reference model.
//!
//! Invariants:
//! 1. The *coherent* view always equals the reference (functional
//!    correctness of caches + MESI under arbitrary interleavings).
//! 2. After a crash, every durable value is one the program actually
//!    stored there (or the initial zero) — never garbage or a torn mix
//!    within one scalar.
//! 3. A value that was flushed-and-fenced after its last store always
//!    survives a crash exactly.

use lp_sim::config::MachineConfig;
use lp_sim::machine::Machine;
use lp_sim::mem::PArray;
use lp_sim::rng::Rng64;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// (core, index, value-tag)
    Store(usize, usize, u16),
    /// (core, index)
    Load(usize, usize),
    /// (core, index)
    Flush(usize, usize),
    /// (core)
    Fence(usize),
}

/// Weighted random op: stores 4, loads 3, flushes 2, fences 1.
fn random_op(rng: &mut Rng64, cores: usize, len: usize) -> Op {
    let c = rng.below(cores);
    let i = rng.below(len);
    match rng.below(10) {
        0..=3 => Op::Store(c, i, rng.below(1 << 16) as u16),
        4..=6 => Op::Load(c, i),
        7..=8 => Op::Flush(c, i),
        _ => Op::Fence(c),
    }
}

fn random_ops(rng: &mut Rng64, cores: usize, len: usize, max_ops: usize) -> Vec<Op> {
    let n = rng.range_inclusive(1, max_ops);
    (0..n).map(|_| random_op(rng, cores, len)).collect()
}

/// Encode (index, tag, sequence) into a unique u64 so torn values are
/// detectable.
fn encode(i: usize, tag: u16, seq: u32) -> u64 {
    ((i as u64) << 48) | ((tag as u64) << 32) | seq as u64
}

fn apply_ops(
    m: &mut Machine,
    arr: PArray<u64>,
    ops: &[Op],
) -> (Vec<u64>, HashMap<usize, HashSet<u64>>, HashSet<usize>) {
    // Reference state, the set of values ever stored per index, and the
    // indexes whose last store was later flushed + fenced by its core.
    let mut reference = vec![0u64; arr.len()];
    let mut ever: HashMap<usize, HashSet<u64>> = HashMap::new();
    let mut unfenced_flush: Vec<HashSet<usize>> = vec![HashSet::new(); m.cores()];
    let mut durable_certain: HashSet<usize> = HashSet::new();
    let mut dirty_since_flush: HashSet<usize> = HashSet::new();
    let mut seq = 0u32;
    for op in ops {
        match *op {
            Op::Store(core, i, tag) => {
                seq += 1;
                let v = encode(i, tag, seq);
                m.ctx(core).store(arr, i, v);
                reference[i] = v;
                ever.entry(i).or_default().insert(v);
                durable_certain.remove(&i);
                dirty_since_flush.insert(i);
            }
            Op::Load(core, i) => {
                let v: u64 = m.ctx(core).load(arr, i);
                assert_eq!(v, reference[i], "coherent load of index {i}");
            }
            Op::Flush(core, i) => {
                m.ctx(core).clflushopt(arr.addr(i));
                // The flush covers the whole line; track just this index.
                if dirty_since_flush.remove(&i) {
                    unfenced_flush[core].insert(i);
                }
            }
            Op::Fence(core) => {
                m.ctx(core).sfence();
                for i in unfenced_flush[core].drain() {
                    durable_certain.insert(i);
                }
            }
        }
    }
    // ADR: a flush is durable on acceptance, fence or not.
    for set in unfenced_flush {
        for i in set {
            durable_certain.insert(i);
        }
    }
    (
        reference,
        ever,
        durable_certain
            .into_iter()
            .filter(|i| !dirty_since_flush.contains(i))
            .collect(),
    )
}

#[test]
fn random_ops_preserve_coherence_and_crash_semantics() {
    for seed in 0..48u64 {
        let mut rng = Rng64::new(0x3e3e_0000 + seed);
        let ops = random_ops(&mut rng, 3, 48, 300);
        let l1_pow = rng.range_inclusive(1, 4);
        let l2_pow = rng.range_inclusive(3, 6);
        let cfg = MachineConfig::default()
            .with_cores(3)
            .with_l1_bytes((1 << l1_pow) * 512)
            .with_l2_bytes((1 << l2_pow) * 1024)
            .with_nvmm_bytes(1 << 20);
        if cfg.validate().is_err() {
            continue;
        }
        let mut m = Machine::new(cfg);
        let arr = m.alloc::<u64>(48).unwrap();
        let (reference, ever, durable_certain) = apply_ops(&mut m, arr, &ops);

        // (0) Structural MESI invariants hold after any op sequence.
        assert_eq!(m.mem().check_invariants(), Ok(()));

        // (1) Coherent view equals the reference everywhere.
        for (i, &want) in reference.iter().enumerate() {
            assert_eq!(m.peek_coherent(arr, i), want, "seed {seed}: coherent {i}");
        }

        // Crash: caches discarded.
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        assert_eq!(m.mem().check_invariants(), Ok(()));

        for (i, &want) in reference.iter().enumerate() {
            let v = m.peek(arr, i);
            // (2) Durable value is something the program stored (or 0).
            if v != 0 {
                assert!(
                    ever.get(&i).is_some_and(|s| s.contains(&v)),
                    "seed {seed}: index {i} holds garbage {v:#x}"
                );
            }
            // (3) Flushed-after-last-store values survive exactly.
            if durable_certain.contains(&i) {
                assert_eq!(v, want, "seed {seed}: persisted index {i} lost");
            }
        }
    }
}

/// Drains never change the coherent view, and make it durable.
#[test]
fn drain_is_transparent_and_durable() {
    for seed in 0..24u64 {
        let mut rng = Rng64::new(0xd4a1_0000 + seed);
        let ops = random_ops(&mut rng, 2, 32, 150);
        let cfg = MachineConfig::default()
            .with_cores(2)
            .with_nvmm_bytes(1 << 20);
        let mut m = Machine::new(cfg);
        let arr = m.alloc::<u64>(32).unwrap();
        let (reference, _, _) = apply_ops(&mut m, arr, &ops);
        m.drain_caches();
        for (i, &want) in reference.iter().enumerate() {
            assert_eq!(m.peek_coherent(arr, i), want, "seed {seed}");
            assert_eq!(m.peek(arr, i), want, "seed {seed}");
        }
        // After a drain, even a crash loses nothing.
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        for (i, &want) in reference.iter().enumerate() {
            assert_eq!(m.peek(arr, i), want, "seed {seed}");
        }
    }
}

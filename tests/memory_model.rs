//! Golden-model property tests for the simulator's memory semantics:
//! random operation sequences on random cache geometries, checked against
//! a simple reference model.
//!
//! Invariants:
//! 1. The *coherent* view always equals the reference (functional
//!    correctness of caches + MESI under arbitrary interleavings).
//! 2. After a crash, every durable value is one the program actually
//!    stored there (or the initial zero) — never garbage or a torn mix
//!    within one scalar.
//! 3. A value that was flushed-and-fenced after its last store always
//!    survives a crash exactly.

use lp_sim::config::MachineConfig;
use lp_sim::machine::Machine;
use lp_sim::mem::PArray;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    /// (core, index, value-tag)
    Store(usize, usize, u16),
    /// (core, index)
    Load(usize, usize),
    /// (core, index)
    Flush(usize, usize),
    /// (core)
    Fence(usize),
}

fn op_strategy(cores: usize, len: usize) -> impl Strategy<Value = Op> {
    let c = 0..cores;
    let i = 0..len;
    prop_oneof![
        4 => (c.clone(), i.clone(), any::<u16>()).prop_map(|(c, i, v)| Op::Store(c, i, v)),
        3 => (c.clone(), i.clone()).prop_map(|(c, i)| Op::Load(c, i)),
        2 => (c.clone(), i.clone()).prop_map(|(c, i)| Op::Flush(c, i)),
        1 => c.prop_map(Op::Fence),
    ]
}

/// Encode (index, tag, sequence) into a unique u64 so torn values are
/// detectable.
fn encode(i: usize, tag: u16, seq: u32) -> u64 {
    ((i as u64) << 48) | ((tag as u64) << 32) | seq as u64
}

fn apply_ops(
    m: &mut Machine,
    arr: PArray<u64>,
    ops: &[Op],
) -> (Vec<u64>, HashMap<usize, HashSet<u64>>, HashSet<usize>) {
    // Reference state, the set of values ever stored per index, and the
    // indexes whose last store was later flushed + fenced by its core.
    let mut reference = vec![0u64; arr.len()];
    let mut ever: HashMap<usize, HashSet<u64>> = HashMap::new();
    let mut unfenced_flush: Vec<HashSet<usize>> = vec![HashSet::new(); m.cores()];
    let mut durable_certain: HashSet<usize> = HashSet::new();
    let mut dirty_since_flush: HashSet<usize> = HashSet::new();
    let mut seq = 0u32;
    for op in ops {
        match *op {
            Op::Store(core, i, tag) => {
                seq += 1;
                let v = encode(i, tag, seq);
                m.ctx(core).store(arr, i, v);
                reference[i] = v;
                ever.entry(i).or_default().insert(v);
                durable_certain.remove(&i);
                dirty_since_flush.insert(i);
            }
            Op::Load(core, i) => {
                let v: u64 = m.ctx(core).load(arr, i);
                assert_eq!(v, reference[i], "coherent load of index {i}");
            }
            Op::Flush(core, i) => {
                m.ctx(core).clflushopt(arr.addr(i));
                // The flush covers the whole line; track just this index.
                if dirty_since_flush.remove(&i) {
                    unfenced_flush[core].insert(i);
                }
            }
            Op::Fence(core) => {
                m.ctx(core).sfence();
                for i in unfenced_flush[core].drain() {
                    durable_certain.insert(i);
                }
            }
        }
    }
    // ADR: a flush is durable on acceptance, fence or not.
    for set in unfenced_flush {
        for i in set {
            durable_certain.insert(i);
        }
    }
    (
        reference,
        ever,
        durable_certain
            .into_iter()
            .filter(|i| !dirty_since_flush.contains(i))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_ops_preserve_coherence_and_crash_semantics(
        ops in prop::collection::vec(op_strategy(3, 48), 1..300),
        l1_pow in 1usize..5,
        l2_pow in 3usize..7,
    ) {
        let cfg = MachineConfig::default()
            .with_cores(3)
            .with_l1_bytes((1 << l1_pow) * 512)
            .with_l2_bytes((1 << l2_pow) * 1024)
            .with_nvmm_bytes(1 << 20);
        prop_assume!(cfg.validate().is_ok());
        let mut m = Machine::new(cfg);
        let arr = m.alloc::<u64>(48).unwrap();
        let (reference, ever, durable_certain) = apply_ops(&mut m, arr, &ops);

        // (0) Structural MESI invariants hold after any op sequence.
        prop_assert_eq!(m.mem().check_invariants(), Ok(()));

        // (1) Coherent view equals the reference everywhere.
        for i in 0..arr.len() {
            prop_assert_eq!(m.peek_coherent(arr, i), reference[i], "coherent {}", i);
        }

        // Crash: caches discarded.
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        prop_assert_eq!(m.mem().check_invariants(), Ok(()));

        for i in 0..arr.len() {
            let v = m.peek(arr, i);
            // (2) Durable value is something the program stored (or 0).
            if v != 0 {
                prop_assert!(
                    ever.get(&i).is_some_and(|s| s.contains(&v)),
                    "index {} holds garbage {:#x}",
                    i,
                    v
                );
            }
            // (3) Flushed-after-last-store values survive exactly.
            if durable_certain.contains(&i) {
                prop_assert_eq!(v, reference[i], "persisted index {} lost", i);
            }
        }
    }

    /// Drains never change the coherent view, and make it durable.
    #[test]
    fn drain_is_transparent_and_durable(
        ops in prop::collection::vec(op_strategy(2, 32), 1..150),
    ) {
        let cfg = MachineConfig::default()
            .with_cores(2)
            .with_nvmm_bytes(1 << 20);
        let mut m = Machine::new(cfg);
        let arr = m.alloc::<u64>(32).unwrap();
        let (reference, _, _) = apply_ops(&mut m, arr, &ops);
        m.drain_caches();
        for i in 0..arr.len() {
            prop_assert_eq!(m.peek_coherent(arr, i), reference[i]);
            prop_assert_eq!(m.peek(arr, i), reference[i]);
        }
        // After a drain, even a crash loses nothing.
        m.mem_mut().force_crash();
        m.mem_mut().acknowledge_crash();
        for i in 0..arr.len() {
            prop_assert_eq!(m.peek(arr, i), reference[i]);
        }
    }
}

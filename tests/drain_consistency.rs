//! Drain-consistency properties the crash-state model checker builds on:
//! once `Machine::drain_caches` has written every dirty line back, the
//! durable image *is* the coherent image, so (a) every committed LP
//! region must pass `region_consistent` under every checksum code, and
//! (b) running real recovery on the drained image must be a no-op.

use lp_core::checksum::ChecksumKind;
use lp_core::recovery::region_consistent;
use lp_core::scheme::{Scheme, SchemeHandles};
use lp_kernels::driver::{prepare_kernel, KernelId, Scale};
use lp_sim::config::MachineConfig;
use lp_sim::machine::{Machine, Outcome};

/// Run a small two-threaded LP workload (4 regions of 6 elements each)
/// under `kind` and return everything needed to audit it afterwards.
fn run_lazy_workload(kind: ChecksumKind) -> (Machine, SchemeHandles, lp_sim::mem::PArray<f64>) {
    let mut machine = Machine::new(
        MachineConfig::default()
            .with_cores(2)
            .with_nvmm_bytes(1 << 20),
    );
    let arr = machine.alloc::<f64>(64).unwrap();
    for i in 0..64 {
        machine.poke(arr, i, 0.0);
    }
    let handles = SchemeHandles::alloc(&mut machine, Scheme::Lazy(kind), 16, 2, 64).unwrap();
    let mut plans = machine.plans();
    for (tid, plan) in plans.iter_mut().enumerate() {
        let tp = handles.thread(tid);
        for r in 0..2 {
            let key = 2 * tid + r;
            plan.region(move |ctx| {
                let mut rs = tp.begin(ctx, key);
                for j in 0..6 {
                    let i = 8 * key + j;
                    tp.store(ctx, &mut rs, arr, i, (i as f64).sin() + key as f64);
                }
                tp.commit(ctx, rs);
            });
        }
    }
    assert_eq!(machine.run(plans), Outcome::Completed);
    (machine, handles, arr)
}

#[test]
fn every_region_is_consistent_after_drain_under_all_checksums() {
    for kind in ChecksumKind::ALL {
        let (mut machine, handles, arr) = run_lazy_workload(kind);
        machine.drain_caches();
        let table = handles.table;
        let mut ctx = machine.ctx(0);
        for key in 0..4 {
            assert!(
                region_consistent(&mut ctx, &table, key, kind, arr, 8 * key..8 * key + 6),
                "region {key} inconsistent after drain under {kind:?}"
            );
        }
    }
}

#[test]
fn recovery_on_a_drained_image_is_a_no_op() {
    let cfg = MachineConfig::default().with_nvmm_bytes(4 << 20);
    for kind in ChecksumKind::ALL {
        let mut pk = prepare_kernel(KernelId::Tmm, Scale::Micro, &cfg, Scheme::Lazy(kind));
        let plans = std::mem::take(&mut pk.plans);
        assert_eq!(pk.machine.run(plans), Outcome::Completed);
        pk.machine.drain_caches();
        let stats = (pk.recover)(&mut pk.machine);
        assert_eq!(
            stats.recomputed_regions, 0,
            "drained image needed repairs under {kind:?}"
        );
        assert!(
            (pk.verify)(&pk.machine),
            "verify failed after no-op recovery under {kind:?}"
        );
    }
    // The non-checksum schemes' recoveries must equally trust a complete
    // durable image.
    for scheme in [Scheme::Eager, Scheme::Wal] {
        let mut pk = prepare_kernel(KernelId::Tmm, Scale::Micro, &cfg, scheme);
        let plans = std::mem::take(&mut pk.plans);
        assert_eq!(pk.machine.run(plans), Outcome::Completed);
        pk.machine.drain_caches();
        let stats = (pk.recover)(&mut pk.machine);
        assert_eq!(
            stats.recomputed_regions, 0,
            "{scheme}: drained image repaired"
        );
        assert!((pk.verify)(&pk.machine), "{scheme}: verify after recovery");
    }
}

//! # lazy-persistency — workspace meta-crate
//!
//! Reproduction of *"Lazy Persistency: A High-Performing and
//! Write-Efficient Software Persistency Technique"* (Alshboul, Tuck,
//! Solihin — ISCA 2018). This crate re-exports the three component
//! crates and hosts the cross-crate integration tests and examples:
//!
//! * [`sim`] (`lp-sim`) — the NVMM cache-hierarchy timing simulator;
//! * [`core`] (`lp-core`) — the Lazy Persistency runtime and baselines;
//! * [`kernels`] (`lp-kernels`) — the five evaluated workloads.
//!
//! See `README.md` for a tour and `examples/quickstart.rs` for the
//! shortest end-to-end program.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use lp_core as core;
pub use lp_kernels as kernels;
pub use lp_sim as sim;
